package dispatch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"edm"
	"edm/internal/experiment"
	"edm/internal/sim"
	"edm/internal/telemetry"
)

// LocalRunner executes one cell in-process; the default is
// experiment.RunCell, which produces the same bytes a worker would.
type LocalRunner func(ctx context.Context, spec experiment.CellSpec) (*edm.Result, error)

// Config describes a Pool.
type Config struct {
	// Workers lists edmd base URLs. Empty means every cell runs
	// locally (a sweep degrades to experiment.Matrix semantics).
	Workers []string
	// Client carries the per-worker HTTP client settings; its BaseURL
	// is ignored (each worker gets its own).
	Client ClientConfig

	// Slots is the number of cells dispatched to one worker
	// concurrently. 0 sizes each worker from its /v1/version workers
	// field — a 4-core worker gets 4 in-flight cells.
	Slots int
	// MaxLaunches bounds executions per cell across the fleet —
	// original + reassignments + hedges (default 3).
	MaxLaunches int
	// HedgeAfter launches a duplicate of a cell still in flight after
	// this long, provided a second executor is available (0 disables).
	HedgeAfter time.Duration
	// ProbeInterval paces /healthz re-probes of unhealthy workers
	// (default 500ms).
	ProbeInterval time.Duration
	// CheckpointEvery, when > 0, turns on checkpointed dispatch: every
	// remote cell checkpoints at this cadence (fired simulation
	// events), the coordinator stashes the newest frame on each status
	// poll, and a cell reassigned after its worker died resumes on the
	// next worker from the stashed frame — verified, byte-identical to
	// a fresh run — instead of starting over. 0 keeps plain dispatch
	// (determinism already makes reruns safe; resume just makes them
	// cheaper).
	CheckpointEvery uint64

	// Local runs cells when the fleet cannot (default
	// experiment.RunCell). DisableLocal turns the fallback off: cells
	// then wait for a worker to return or fail with ErrExhausted.
	Local        LocalRunner
	DisableLocal bool
	// LocalParallelism bounds concurrent local fallback runs (default
	// NumCPU).
	LocalParallelism int

	// Logf, when set, receives coordinator progress lines (worker
	// down/up, reassignments, hedges, fallback activation).
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.MaxLaunches <= 0 {
		c.MaxLaunches = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.Local == nil {
		c.Local = experiment.RunCell
	}
	if c.LocalParallelism <= 0 {
		c.LocalParallelism = runtime.NumCPU()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// workerState is one fleet member: its client, health flag and
// counters. Counters are atomics — worker goroutines write while the
// summary reads.
type workerState struct {
	name    string
	client  *Client
	healthy atomic.Bool
	slots   int

	assigned  atomic.Uint64 // cells handed to this worker
	completed atomic.Uint64 // accepted results it produced
	failed    atomic.Uint64 // permanent run failures it reported
	downs     atomic.Uint64 // times it was marked unavailable
	discarded atomic.Uint64 // completions discarded as duplicates
	frames    atomic.Uint64 // checkpoint frames stashed from its jobs
}

// Pool coordinates sweeps over a worker fleet. Build with New; one
// Pool can run several sweeps in sequence, accumulating counters.
type Pool struct {
	cfg     Config
	workers []*workerState

	// Fleet-level counters across Run calls.
	localRuns  atomic.Uint64
	hedges     atomic.Uint64
	reassigns  atomic.Uint64
	duplicates atomic.Uint64
	resumes    atomic.Uint64
}

// New builds a pool over the configured fleet.
func New(cfg Config) *Pool {
	cfg.applyDefaults()
	p := &Pool{cfg: cfg}
	for _, url := range cfg.Workers {
		cc := cfg.Client
		cc.BaseURL = url
		w := &workerState{name: url, client: NewClient(cc), slots: cfg.Slots}
		p.workers = append(p.workers, w)
	}
	return p
}

// cellState is one unique cell during a Run: its spec, bookkeeping,
// and the accepted outcome. All mutable fields are guarded by
// runState.mu.
type cellState struct {
	spec experiment.CellSpec

	launches   int
	inflight   int
	reassigned int
	hedged     bool
	discarded  int
	resumed    int
	frame      []byte // newest stashed checkpoint frame
	firstStart time.Time
	lastStart  time.Time

	done     bool
	result   *edm.Result
	err      error
	worker   string
	duration time.Duration
}

// runState is the per-Run coordination hub.
type runState struct {
	mu        sync.Mutex
	cells     []*cellState
	pending   chan *cellState
	remaining int
	done      chan struct{}

	localOnce sync.Once
	localWG   sync.WaitGroup
}

// Run executes every spec and returns one CellRun per input, in input
// order. Duplicate specs (same Key) are executed once and share the
// outcome. Run blocks until every cell has a result or ctx is
// cancelled; on cancellation, unfinished cells carry ctx's error.
func (p *Pool) Run(ctx context.Context, specs []experiment.CellSpec) ([]CellRun, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Deduplicate by key: hedging and reassignment already guarantee
	// at-most-one accepted result per key, and identical input specs
	// ride the same guarantee.
	byKey := make(map[string]*cellState)
	slots := make([]*cellState, len(specs))
	rs := &runState{done: make(chan struct{})}
	for i, s := range specs {
		key := s.Key()
		c := byKey[key]
		if c == nil {
			c = &cellState{spec: s}
			byKey[key] = c
			rs.cells = append(rs.cells, c)
		}
		slots[i] = c
	}
	rs.remaining = len(rs.cells)
	// Sized so every enqueue — initial, reassigned, hedged — has room
	// without blocking a worker goroutine.
	rs.pending = make(chan *cellState, len(rs.cells)*(p.cfg.MaxLaunches+1))
	for _, c := range rs.cells {
		rs.pending <- c
	}
	if rs.remaining == 0 {
		close(rs.done)
		return []CellRun{}, nil
	}

	healthyAtStart := p.probeFleet(ctx)
	if len(p.workers) == 0 || healthyAtStart == 0 {
		if len(p.workers) > 0 {
			p.cfg.Logf("dispatch: no healthy workers at start, running locally")
		}
		p.startLocal(ctx, rs)
	}

	var loops sync.WaitGroup
	for _, w := range p.workers {
		n := w.slots
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			loops.Add(1)
			go func(w *workerState) {
				defer loops.Done()
				p.workerLoop(ctx, rs, w)
			}(w)
		}
	}
	if p.cfg.HedgeAfter > 0 {
		loops.Add(1)
		go func() {
			defer loops.Done()
			p.hedgeLoop(ctx, rs)
		}()
	}

	var runErr error
	select {
	case <-rs.done:
	case <-ctx.Done():
		runErr = ctx.Err()
	}
	cancel() // release worker loops blocked on probes or slow calls
	loops.Wait()
	rs.localWG.Wait()

	runs := make([]CellRun, len(specs))
	rs.mu.Lock()
	for i, c := range slots {
		r := CellRun{
			Spec:       c.spec,
			Result:     c.result,
			Err:        c.err,
			Worker:     c.worker,
			Launches:   c.launches,
			Reassigned: c.reassigned,
			Hedged:     c.hedged,
			Discarded:  c.discarded,
			Resumed:    c.resumed,
			Duration:   c.duration,
		}
		if !c.done {
			r.Err = context.Cause(ctx)
			if r.Err == nil {
				r.Err = ctx.Err()
			}
		}
		runs[i] = r
	}
	rs.mu.Unlock()
	return runs, runErr
}

// probeFleet health-checks every worker in parallel and returns how
// many answered healthy. It also sizes auto-slots from /v1/version.
func (p *Pool) probeFleet(ctx context.Context) int {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			h, err := w.client.Health(ctx)
			ok := err == nil && h.OK()
			w.healthy.Store(ok)
			if !ok {
				w.downs.Add(1)
				p.cfg.Logf("dispatch: worker %s unhealthy at start (%v)", w.name, err)
				return
			}
			if w.slots <= 0 {
				if v, err := w.client.Version(ctx); err == nil && v.Workers > 0 {
					w.slots = v.Workers
					p.cfg.Logf("dispatch: worker %s: %s %s, %d slots", w.name, v.Service, v.Version, v.Workers)
				} else {
					w.slots = 1
				}
			}
		}(w)
	}
	wg.Wait()
	n := 0
	for _, w := range p.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// workerLoop pulls cells for one worker slot until the run completes.
// An unhealthy worker's slots sit in reprobe instead of pulling, so a
// dead worker never starves the queue.
func (p *Pool) workerLoop(ctx context.Context, rs *runState, w *workerState) {
	for {
		if !w.healthy.Load() {
			if !p.reprobe(ctx, rs, w) {
				return
			}
		}
		select {
		case <-rs.done:
			return
		case <-ctx.Done():
			return
		case cell := <-rs.pending:
			p.execute(ctx, rs, w, cell)
		}
	}
}

// reprobe polls an unhealthy worker's /healthz until it recovers or
// the run ends. Only one slot probes; the rest wait on the cheap flag.
func (p *Pool) reprobe(ctx context.Context, rs *runState, w *workerState) bool {
	tick := time.NewTicker(p.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rs.done:
			return false
		case <-ctx.Done():
			return false
		case <-tick.C:
		}
		if w.healthy.Load() {
			return true
		}
		if h, err := w.client.Health(ctx); err == nil && h.OK() {
			if w.healthy.CompareAndSwap(false, true) {
				p.cfg.Logf("dispatch: worker %s recovered", w.name)
			}
			return true
		}
	}
}

// execute runs one cell on one worker and routes the outcome.
func (p *Pool) execute(ctx context.Context, rs *runState, w *workerState, cell *cellState) {
	if !p.beginLaunch(rs, cell) {
		return
	}
	w.assigned.Add(1)
	var res *edm.Result
	var err error
	if p.cfg.CheckpointEvery > 0 {
		rs.mu.Lock()
		resume := cell.frame
		if resume != nil {
			cell.resumed++
		}
		rs.mu.Unlock()
		if resume != nil {
			p.resumes.Add(1)
			p.cfg.Logf("dispatch: resuming %s on %s from stashed checkpoint (%d bytes)",
				cell.spec, w.name, len(resume))
		}
		res, err = w.client.RunCellResumable(ctx, cell.spec, p.cfg.CheckpointEvery, resume,
			func(frame []byte) {
				rs.mu.Lock()
				cell.frame = frame
				rs.mu.Unlock()
				w.frames.Add(1)
			})
	} else {
		res, err = w.client.RunCell(ctx, cell.spec)
	}
	switch {
	case err == nil:
		if p.deliver(rs, cell, res, nil, w.name) {
			w.completed.Add(1)
		} else {
			w.discarded.Add(1)
			p.duplicates.Add(1)
		}
	case errors.Is(err, ErrUnavailable):
		p.markDown(ctx, rs, w, err)
		p.requeue(ctx, rs, cell, err)
	case errors.Is(err, ErrRunFailed), ctx.Err() == nil:
		// The worker executed the cell and it failed — deterministic,
		// so rerunning elsewhere reproduces it. Record the failure.
		w.failed.Add(1)
		if !p.deliver(rs, cell, nil, err, w.name) {
			w.discarded.Add(1)
			p.duplicates.Add(1)
		}
	default:
		// Cancelled mid-call by the run ending; drop the launch.
		p.abandon(rs, cell)
	}
}

// beginLaunch records a new execution of the cell, refusing when the
// cell has already completed (a hedge that lost the race before it
// even started).
func (p *Pool) beginLaunch(rs *runState, cell *cellState) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if cell.done {
		return false
	}
	now := time.Now()
	if cell.firstStart.IsZero() {
		cell.firstStart = now
	}
	cell.lastStart = now
	cell.launches++
	cell.inflight++
	return true
}

// deliver installs a completed execution's outcome. Exactly one
// execution per cell wins; it reports whether this was the winner.
func (p *Pool) deliver(rs *runState, cell *cellState, res *edm.Result, err error, worker string) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	cell.inflight--
	return completeLocked(rs, cell, res, err, worker)
}

// completeLocked records the accepted outcome (first completion wins)
// under rs.mu. It reports whether this completion was the winner.
func completeLocked(rs *runState, cell *cellState, res *edm.Result, err error, worker string) bool {
	if cell.done {
		cell.discarded++
		return false
	}
	cell.done = true
	cell.result = res
	cell.err = err
	cell.worker = worker
	cell.duration = time.Since(cell.firstStart)
	rs.remaining--
	if rs.remaining == 0 {
		close(rs.done)
	}
	return true
}

// abandon drops an execution without an outcome (run shutdown).
func (p *Pool) abandon(rs *runState, cell *cellState) {
	rs.mu.Lock()
	cell.inflight--
	rs.mu.Unlock()
}

// requeue sends a cell back to the pending queue after its worker
// became unavailable, or records exhaustion when it is out of
// launches.
func (p *Pool) requeue(ctx context.Context, rs *runState, cell *cellState, cause error) {
	exhausted := func(cell *cellState, cause error) error {
		return fmt.Errorf("%w: %s after %d launches: %v", ErrExhausted, cell.spec, cell.launches, cause)
	}
	rs.mu.Lock()
	cell.inflight--
	if cell.done {
		rs.mu.Unlock()
		return
	}
	if cell.launches >= p.cfg.MaxLaunches {
		if cell.inflight == 0 {
			completeLocked(rs, cell, nil, exhausted(cell, cause), "")
		}
		// Otherwise another execution is still in flight; let it decide.
		rs.mu.Unlock()
		return
	}
	cell.reassigned++
	rs.mu.Unlock()
	p.reassigns.Add(1)
	p.cfg.Logf("dispatch: reassigning %s (%v)", cell.spec, cause)
	select {
	case rs.pending <- cell:
	default:
		// Channel sized for the worst case; reaching here is a bug.
		rs.mu.Lock()
		completeLocked(rs, cell, nil, exhausted(cell, fmt.Errorf("pending queue overflow")), "")
		rs.mu.Unlock()
	}
}

// markDown flips a worker unhealthy and, when that was the last
// healthy worker, activates the local fallback so the sweep finishes
// without the fleet.
func (p *Pool) markDown(ctx context.Context, rs *runState, w *workerState, cause error) {
	if !w.healthy.CompareAndSwap(true, false) {
		return
	}
	w.downs.Add(1)
	p.cfg.Logf("dispatch: worker %s unavailable (%v)", w.name, cause)
	for _, other := range p.workers {
		if other.healthy.Load() {
			return
		}
	}
	p.cfg.Logf("dispatch: no healthy workers left, running remaining cells locally")
	p.startLocal(ctx, rs)
}

// startLocal launches the local fallback executors (once per Run).
// They drain the pending queue alongside any workers that later
// recover; the per-cell dedup keeps double execution harmless.
func (p *Pool) startLocal(ctx context.Context, rs *runState) {
	if p.cfg.DisableLocal {
		return
	}
	rs.localOnce.Do(func() {
		for i := 0; i < p.cfg.LocalParallelism; i++ {
			rs.localWG.Add(1)
			go func() {
				defer rs.localWG.Done()
				for {
					select {
					case <-rs.done:
						return
					case <-ctx.Done():
						return
					case cell := <-rs.pending:
						if !p.beginLaunch(rs, cell) {
							continue
						}
						p.localRuns.Add(1)
						res, err := p.cfg.Local(ctx, cell.spec)
						if err != nil && ctx.Err() != nil {
							p.abandon(rs, cell)
							continue
						}
						if !p.deliver(rs, cell, res, err, "local") {
							p.duplicates.Add(1)
						}
					}
				}
			}()
		}
	})
}

// hedgeLoop launches a duplicate execution for cells in flight longer
// than HedgeAfter — stragglers on a slow or silently-stuck worker —
// provided the fleet has somewhere else to run them.
func (p *Pool) hedgeLoop(ctx context.Context, rs *runState) {
	interval := p.cfg.HedgeAfter / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-rs.done:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		healthy := 0
		for _, w := range p.workers {
			if w.healthy.Load() {
				healthy++
			}
		}
		if healthy < 2 {
			continue // nowhere independent to hedge to
		}
		now := time.Now()
		rs.mu.Lock()
		var hedged []*cellState
		for _, c := range rs.cells {
			if c.done || c.hedged || c.inflight == 0 || c.launches >= p.cfg.MaxLaunches {
				continue
			}
			if now.Sub(c.lastStart) < p.cfg.HedgeAfter {
				continue
			}
			c.hedged = true
			hedged = append(hedged, c)
		}
		rs.mu.Unlock()
		for _, c := range hedged {
			p.hedges.Add(1)
			p.cfg.Logf("dispatch: hedging straggler %s", c.spec)
			select {
			case rs.pending <- c:
			default:
			}
		}
	}
}

// Registry exposes the pool's dispatch counters as a telemetry
// registry — the same type edmd serves on /metricsz — with one column
// set per worker plus fleet totals. Build per call: registration is
// one-shot, the gauges read live atomics.
func (p *Pool) Registry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	gauge := func(name string, v *atomic.Uint64) {
		reg.Gauge(name, func(sim.Time) float64 { return float64(v.Load()) })
	}
	for i, w := range p.workers {
		prefix := fmt.Sprintf("worker%d.", i)
		gauge(prefix+"assigned", &w.assigned)
		gauge(prefix+"completed", &w.completed)
		gauge(prefix+"failed", &w.failed)
		gauge(prefix+"retries", &w.client.Retries)
		gauge(prefix+"downs", &w.downs)
		gauge(prefix+"discarded", &w.discarded)
		gauge(prefix+"frames_stashed", &w.frames)
	}
	gauge("fleet.local_runs", &p.localRuns)
	gauge("fleet.hedges", &p.hedges)
	gauge("fleet.reassigned", &p.reassigns)
	gauge("fleet.duplicates_discarded", &p.duplicates)
	gauge("fleet.checkpoint_resumes", &p.resumes)
	return reg
}

// WriteSummary renders the dispatch counters as "name value" text —
// the /metricsz format — prefixed per worker, for edmctl's
// end-of-sweep summary.
func (p *Pool) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "# dispatch summary (%d workers)\n", len(p.workers))
	for i, ws := range p.workers {
		fmt.Fprintf(w, "# worker%d = %s (healthy=%v)\n", i, ws.name, ws.healthy.Load())
	}
	p.Registry().WriteText(w, "edmctl_", 0)
}

// Workers returns the configured worker base URLs in order.
func (p *Pool) Workers() []string {
	out := make([]string, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.name
	}
	return out
}
