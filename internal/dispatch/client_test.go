package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"edm/internal/server"
)

func TestClientRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": "transient"})
			return
		}
		json.NewEncoder(w).Encode(server.VersionInfo{Service: "edmd", Version: "x"})
	}))
	defer ts.Close()

	cfg := fastClient()
	cfg.BaseURL = ts.URL
	c := NewClient(cfg)
	v, err := c.Version(context.Background())
	if err != nil {
		t.Fatalf("Version after transient failures: %v", err)
	}
	if v.Service != "edmd" {
		t.Errorf("decoded %+v", v)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if got := c.Retries.Load(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
}

func TestClientPermanent4xxDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such run"})
	}))
	defer ts.Close()

	cfg := fastClient()
	cfg.BaseURL = ts.URL
	c := NewClient(cfg)
	_, _, err := c.Status(context.Background(), "nope")
	if err == nil {
		t.Fatal("want error")
	}
	if errors.Is(err, ErrUnavailable) {
		t.Errorf("4xx misclassified as unavailability: %v", err)
	}
	if !strings.Contains(err.Error(), "no such run") {
		t.Errorf("server's error message lost: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (no retries)", got)
	}
	if got := c.Retries.Load(); got != 0 {
		t.Errorf("Retries = %d, want 0", got)
	}
}

func TestClientExhaustsRetriesAsUnavailable(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer ts.Close()

	cfg := fastClient() // MaxRetries: 2
	cfg.BaseURL = ts.URL
	c := NewClient(cfg)
	_, err := c.Version(context.Background())
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + MaxRetries)", got)
	}
}

// TestAttemptHonoursRetryAfter pins the 429 contract end to end at the
// attempt level: a Retry-After of integer seconds (RFC 9110) becomes
// exactly that wait, overriding the computed backoff; absence of the
// header means "use the computed backoff" (a zero return).
func TestAttemptHonoursRetryAfter(t *testing.T) {
	var withHeader atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if withHeader.Load() {
			w.Header().Set("Retry-After", "7")
		}
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
	}))
	defer ts.Close()

	cfg := fastClient()
	cfg.BaseURL = ts.URL
	c := NewClient(cfg)

	withHeader.Store(true)
	wait, err := c.attempt(context.Background(), http.MethodGet, "/v1/version", nil, nil)
	if err == nil {
		t.Fatal("want error from 429")
	}
	if wait != 7*time.Second {
		t.Errorf("wait = %v, want 7s from Retry-After", wait)
	}

	withHeader.Store(false)
	wait, err = c.attempt(context.Background(), http.MethodGet, "/v1/version", nil, nil)
	if err == nil {
		t.Fatal("want error from 429")
	}
	if wait != 0 {
		t.Errorf("wait = %v, want 0 (computed backoff) without Retry-After", wait)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"30", 30 * time.Second},
		{"-5", 0},
		{"soon", 0},
		{"1.5", 0}, // RFC 9110 delay-seconds is an integer
	} {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		if got := retryAfter(resp); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	cfg := ClientConfig{RetryBase: 10 * time.Millisecond, RetryMax: 80 * time.Millisecond}
	c := NewClient(cfg)
	for attempt := 0; attempt < 12; attempt++ {
		ceil := cfg.RetryBase << attempt
		if ceil > cfg.RetryMax || ceil <= 0 {
			ceil = cfg.RetryMax
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < ceil/2 || d > ceil {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
	}
}

func TestHealthDecodesDrainingWorker(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(Health{Status: "draining", Workers: 2})
	}))
	defer ts.Close()

	cfg := fastClient()
	cfg.BaseURL = ts.URL
	h, err := NewClient(cfg).Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.OK() {
		t.Error("draining worker reported OK")
	}
	if h.Status != "draining" || h.Workers != 2 {
		t.Errorf("decoded %+v", h)
	}
}

func TestRunReportsFailedJobAsRunFailed(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusAccepted)
		json.NewEncoder(rw).Encode(server.JobStatus{ID: "j1", State: server.StateQueued})
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(server.JobStatus{ID: "j1", State: server.StateFailed, Error: "unknown workload"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := fastClient()
	cfg.BaseURL = ts.URL
	_, err := NewClient(cfg).Run(context.Background(), server.RunRequest{Workload: "nope"})
	if !errors.Is(err, ErrRunFailed) {
		t.Fatalf("err = %v, want ErrRunFailed", err)
	}
	if !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("job error lost: %v", err)
	}
}

// TestCellSubmitCarriesSchedulingIdentity pins the priority/tenant
// passthrough: a client configured with a scheduling class and tenant
// stamps them on every cell submission's wire body, while the spec
// mapping itself (RequestForCell) stays identity-free.
func TestCellSubmitCarriesSchedulingIdentity(t *testing.T) {
	spec := fakeSpec("prio")
	if req := RequestForCell(spec); req.Priority != "" || req.Tenant != "" {
		t.Fatalf("RequestForCell carries scheduling identity: %+v", req)
	}

	var got server.RunRequest
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(rw http.ResponseWriter, r *http.Request) {
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Errorf("decoding submission: %v", err)
		}
		rw.WriteHeader(http.StatusAccepted)
		json.NewEncoder(rw).Encode(server.JobStatus{ID: "j1", State: server.StateQueued})
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(rw http.ResponseWriter, r *http.Request) {
		view := struct {
			server.JobStatus
			Result any `json:"result"`
		}{JobStatus: server.JobStatus{ID: "j1", State: server.StateDone}, Result: fakeResult(got)}
		json.NewEncoder(rw).Encode(view)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := fastClient()
	cfg.BaseURL = ts.URL
	cfg.Priority = "batch"
	cfg.Tenant = "sweep-42"
	if _, err := NewClient(cfg).RunCell(context.Background(), spec); err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if got.Priority != "batch" || got.Tenant != "sweep-42" {
		t.Errorf("submission carried priority=%q tenant=%q, want batch/sweep-42", got.Priority, got.Tenant)
	}
}

// TestAPIErrorText covers the envelope, legacy and raw-text decode
// paths of the error extractor.
func TestAPIErrorText(t *testing.T) {
	for _, tc := range []struct {
		body string
		want string
	}{
		{`{"code":"queue_full","message":"queue is full","retry_after_s":2}`, "queue_full: queue is full"},
		{`{"message":"just a message"}`, "just a message"},
		{`{"error":"legacy shape"}`, "legacy shape"},
		{"plain proxy text\n", "plain proxy text"},
		{`{"unrelated":true}`, `{"unrelated":true}`},
	} {
		if got := apiErrorText(strings.NewReader(tc.body)); got != tc.want {
			t.Errorf("apiErrorText(%q) = %q, want %q", tc.body, got, tc.want)
		}
	}
}

func TestRunEndToEndAgainstFake(t *testing.T) {
	w := newFakeWorker(newFakeFleet(nil))
	defer w.kill()

	cfg := fastClient()
	cfg.BaseURL = w.url()
	c := NewClient(cfg)
	spec := fakeSpec("e2e")
	res, err := c.RunCell(context.Background(), spec)
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if res.Trace != spec.Trace || res.OSDs != spec.OSDs {
		t.Errorf("result %+v does not match spec %+v", res, spec)
	}
}
