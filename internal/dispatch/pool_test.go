package dispatch

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"edm"
	"edm/internal/experiment"
)

// countingLocal is a LocalRunner that counts executions and returns the
// canned per-spec result.
func countingLocal(n *atomic.Uint64) LocalRunner {
	return func(ctx context.Context, spec experiment.CellSpec) (*edm.Result, error) {
		n.Add(1)
		return wantFakeResult(spec), nil
	}
}

func TestEmptyFleetRunsLocally(t *testing.T) {
	var localCalls atomic.Uint64
	p := New(Config{Local: countingLocal(&localCalls)})
	specs := []experiment.CellSpec{fakeSpec("a"), fakeSpec("b"), fakeSpec("c")}

	runs, err := p.Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(runs) != len(specs) {
		t.Fatalf("got %d runs, want %d", len(runs), len(specs))
	}
	for i, r := range runs {
		if r.Err != nil {
			t.Fatalf("run %d: %v", i, r.Err)
		}
		if r.Worker != "local" {
			t.Errorf("run %d worker = %q, want local", i, r.Worker)
		}
		if r.Spec != specs[i] {
			t.Errorf("run %d spec out of order: %+v", i, r.Spec)
		}
		if !reflect.DeepEqual(r.Result, wantFakeResult(specs[i])) {
			t.Errorf("run %d wrong result: %+v", i, r.Result)
		}
	}
	if got := localCalls.Load(); got != 3 {
		t.Errorf("local executions = %d, want 3", got)
	}

	cells := Merge(runs)
	for i, c := range cells {
		if c.Trace != specs[i].Trace || c.OSDs != specs[i].OSDs || c.Policy != specs[i].Policy {
			t.Errorf("merged cell %d out of order: %+v", i, c)
		}
	}
}

func TestDuplicateSpecsExecuteOnce(t *testing.T) {
	var localCalls atomic.Uint64
	p := New(Config{Local: countingLocal(&localCalls)})
	dup := fakeSpec("dup")
	specs := []experiment.CellSpec{dup, fakeSpec("other"), dup, dup}

	runs, err := p.Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := localCalls.Load(); got != 2 {
		t.Errorf("local executions = %d, want 2 (one per unique spec)", got)
	}
	if runs[0].Result != runs[2].Result || runs[0].Result != runs[3].Result {
		t.Error("duplicate specs should share one accepted result")
	}
	if !reflect.DeepEqual(runs[1].Result, wantFakeResult(specs[1])) {
		t.Errorf("distinct spec got wrong result: %+v", runs[1].Result)
	}
}

func TestLocalRunFailureIsRecorded(t *testing.T) {
	boom := errors.New("boom")
	p := New(Config{Local: func(ctx context.Context, spec experiment.CellSpec) (*edm.Result, error) {
		if spec.Trace == "bad" {
			return nil, boom
		}
		return wantFakeResult(spec), nil
	}})
	runs, err := p.Run(context.Background(), []experiment.CellSpec{fakeSpec("good"), fakeSpec("bad")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if runs[0].Err != nil {
		t.Errorf("good cell failed: %v", runs[0].Err)
	}
	if !errors.Is(runs[1].Err, boom) {
		t.Errorf("bad cell err = %v, want boom", runs[1].Err)
	}
}

// TestWorkerKilledMidCellReassignedOnce pins the coordinator's fault
// path: a worker that dies while executing a cell is marked down and
// the cell is reassigned — exactly once — to a surviving worker.
func TestWorkerKilledMidCellReassignedOnce(t *testing.T) {
	// First execution of the cell stalls forever (its worker will be
	// killed); any later execution completes immediately.
	fleet := newFakeFleet(func(workload string, n int) time.Duration {
		if n == 1 {
			return -1
		}
		return 0
	})
	w1, w2 := newFakeWorker(fleet), newFakeWorker(fleet)
	defer w1.kill()
	defer w2.kill()
	workers := map[string]*fakeWorker{w1.url(): w1, w2.url(): w2}

	p := New(Config{
		Workers:       []string{w1.url(), w2.url()},
		Client:        fastClient(),
		Slots:         1,
		DisableLocal:  true,
		ProbeInterval: 5 * time.Millisecond,
		Logf:          t.Logf,
	})

	// Kill whichever worker accepted the first execution, as soon as it
	// has accepted it.
	killed := make(chan string, 1)
	go func() {
		e := <-fleet.firstExec
		workers[e.worker].kill()
		killed <- e.worker
	}()

	spec := fakeSpec("victim")
	runs, err := p.Run(context.Background(), []experiment.CellSpec{spec})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := runs[0]
	if r.Err != nil {
		t.Fatalf("cell failed: %v", r.Err)
	}
	deadWorker := <-killed
	if r.Worker == deadWorker || r.Worker == "" {
		t.Errorf("accepted result from %q, want the surviving worker", r.Worker)
	}
	if r.Reassigned != 1 {
		t.Errorf("reassigned = %d, want exactly 1", r.Reassigned)
	}
	if r.Launches != 2 {
		t.Errorf("launches = %d, want 2 (original + reassignment)", r.Launches)
	}
	if got := fleet.executions("victim"); got != 2 {
		t.Errorf("fleet accepted %d executions, want 2", got)
	}
	if !reflect.DeepEqual(r.Result, wantFakeResult(spec)) {
		t.Errorf("wrong result after reassignment: %+v", r.Result)
	}
	if got := p.reassigns.Load(); got != 1 {
		t.Errorf("pool reassign counter = %d, want 1", got)
	}
}

// TestHedgedDuplicateDiscarded pins hedging and dedup: a straggling
// cell gets a duplicate launch, the duplicate's result is accepted, and
// the straggler's eventual completion is discarded.
func TestHedgedDuplicateDiscarded(t *testing.T) {
	// Cell "straggler": first execution takes 150ms (long past the
	// hedge threshold), the hedge completes immediately. Cell "anchor"
	// takes 500ms on every execution — it keeps the run alive so the
	// straggler's late completion arrives while the coordinator is
	// still collecting and is observably discarded.
	fleet := newFakeFleet(func(workload string, n int) time.Duration {
		switch {
		case workload == "straggler" && n == 1:
			return 150 * time.Millisecond
		case workload == "anchor":
			return 500 * time.Millisecond
		}
		return 0
	})
	w1, w2 := newFakeWorker(fleet), newFakeWorker(fleet)
	defer w1.kill()
	defer w2.kill()

	p := New(Config{
		Workers:      []string{w1.url(), w2.url()},
		Client:       fastClient(),
		Slots:        2, // a free slot per worker so hedges start promptly
		DisableLocal: true,
		HedgeAfter:   40 * time.Millisecond,
		Logf:         t.Logf,
	})

	specs := []experiment.CellSpec{fakeSpec("straggler"), fakeSpec("anchor")}
	runs, err := p.Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	straggler := runs[0]
	if straggler.Err != nil {
		t.Fatalf("straggler failed: %v", straggler.Err)
	}
	if !straggler.Hedged {
		t.Error("straggler was not hedged")
	}
	if straggler.Launches != 2 {
		t.Errorf("straggler launches = %d, want 2", straggler.Launches)
	}
	if straggler.Discarded != 1 {
		t.Errorf("straggler discarded completions = %d, want 1 (the late original)", straggler.Discarded)
	}
	if !reflect.DeepEqual(straggler.Result, wantFakeResult(specs[0])) {
		t.Errorf("straggler accepted wrong result: %+v", straggler.Result)
	}
	if runs[1].Err != nil {
		t.Fatalf("anchor failed: %v", runs[1].Err)
	}
	if got := p.hedges.Load(); got < 1 {
		t.Errorf("pool hedge counter = %d, want >= 1", got)
	}
	if got := p.duplicates.Load(); got < 1 {
		t.Errorf("pool duplicate counter = %d, want >= 1", got)
	}
}

// TestHedgeBothExecutionsFail pins the double-failure corner of
// hedging: the primary stalls, a hedge launches on the second worker,
// then BOTH workers die mid-flight. The cell must fail cleanly with
// ErrExhausted (not hang waiting for a completion that cannot come),
// every retry must land in the per-worker accounting, and no
// coordinator goroutine may outlive Run.
func TestHedgeBothExecutionsFail(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Every execution of the cell stalls forever; completions can only
	// come from the fault path.
	fleet := newFakeFleet(func(string, int) time.Duration { return -1 })
	w1, w2 := newFakeWorker(fleet), newFakeWorker(fleet)
	defer w1.kill()
	defer w2.kill()

	p := New(Config{
		Workers:       []string{w1.url(), w2.url()},
		Client:        fastClient(),
		Slots:         1,
		MaxLaunches:   2, // primary + hedge: no third launch to hide behind
		DisableLocal:  true,
		HedgeAfter:    20 * time.Millisecond,
		ProbeInterval: 5 * time.Millisecond,
		Logf:          t.Logf,
	})

	// Kill both workers once the hedge is in flight (two accepted
	// executions fleet-wide).
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for fleet.executions("victim") < 2 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		w1.kill()
		w2.kill()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	runs, err := p.Run(ctx, []experiment.CellSpec{fakeSpec("victim")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := runs[0]
	if !errors.Is(r.Err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", r.Err)
	}
	if !r.Hedged {
		t.Error("cell was not hedged before the double failure")
	}
	if r.Launches != 2 {
		t.Errorf("launches = %d, want 2 (primary + hedge)", r.Launches)
	}
	if got := fleet.executions("victim"); got != 2 {
		t.Errorf("fleet accepted %d executions, want 2", got)
	}
	// Both deaths were discovered through the retry machinery: each
	// worker's client retried its failing call before giving up.
	for _, w := range p.workers {
		if got := w.client.Retries.Load(); got == 0 {
			t.Errorf("worker %s recorded no retries despite dying mid-poll", w.name)
		}
		if got := w.downs.Load(); got == 0 {
			t.Errorf("worker %s never marked down", w.name)
		}
	}

	// Every coordinator goroutine (worker loops, hedge loop, reprobes)
	// must have exited with Run. httptest teardown is asynchronous, so
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d at start, %d after Run\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFirstCompletionWinsDedup is the white-box core of result dedup:
// with two executions of one cell in flight, the first completion is
// accepted and the second is discarded.
func TestFirstCompletionWinsDedup(t *testing.T) {
	p := New(Config{})
	cell := &cellState{spec: fakeSpec("x")}
	rs := &runState{cells: []*cellState{cell}, remaining: 1, done: make(chan struct{})}

	if !p.beginLaunch(rs, cell) || !p.beginLaunch(rs, cell) {
		t.Fatal("two launches of an incomplete cell must both be admitted")
	}
	first := wantFakeResult(cell.spec)
	if !p.deliver(rs, cell, first, nil, "w1") {
		t.Fatal("first completion must win")
	}
	if p.deliver(rs, cell, &edm.Result{Trace: "imposter"}, nil, "w2") {
		t.Fatal("second completion must be discarded")
	}
	if cell.result != first || cell.worker != "w1" {
		t.Errorf("accepted outcome overwritten: worker=%q", cell.worker)
	}
	if cell.discarded != 1 {
		t.Errorf("discarded = %d, want 1", cell.discarded)
	}
	if p.beginLaunch(rs, cell) {
		t.Error("a completed cell must refuse new launches")
	}
	select {
	case <-rs.done:
	default:
		t.Error("run not marked done after last cell completed")
	}
}

func TestExhaustedLaunchesFailCell(t *testing.T) {
	// The worker answers /healthz but 500s every submission: each
	// launch ends unavailable, the worker recovers on reprobe, and the
	// cell cycles until MaxLaunches is spent and it fails with
	// ErrExhausted — no fallback with DisableLocal set.
	w1 := newFakeWorker(newFakeFleet(nil))
	defer w1.kill()
	w1.mode.Store(mode500)

	p := New(Config{
		Workers:       []string{w1.url()},
		Client:        fastClient(),
		Slots:         1,
		MaxLaunches:   2,
		DisableLocal:  true,
		ProbeInterval: 2 * time.Millisecond,
		Logf:          t.Logf,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	runs, err := p.Run(ctx, []experiment.CellSpec{fakeSpec("doomed")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(runs[0].Err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", runs[0].Err)
	}
	if runs[0].Launches != 2 {
		t.Errorf("launches = %d, want 2", runs[0].Launches)
	}
}

func TestWriteSummaryListsWorkers(t *testing.T) {
	var localCalls atomic.Uint64
	p := New(Config{Local: countingLocal(&localCalls)})
	if _, err := p.Run(context.Background(), []experiment.CellSpec{fakeSpec("s")}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	p.WriteSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "edmctl_fleet.local_runs 1") {
		t.Errorf("summary missing local run counter:\n%s", out)
	}
	reg := p.Registry()
	var rb strings.Builder
	reg.WriteText(&rb, "", 0)
	if !strings.Contains(rb.String(), "fleet.local_runs 1") {
		t.Errorf("registry missing local run counter:\n%s", rb.String())
	}
}
