package dispatch

// Failure-injection harness: a fake edmd worker speaking the API subset
// the dispatch client uses, whose behaviour is scripted per execution.
// A fakeFleet shares one execution log across its workers, so a script
// can say "the first execution of cell X anywhere stalls 150ms, every
// later one completes immediately" — which pins down reassignment and
// hedging scenarios deterministically regardless of which worker the
// coordinator happens to pick.
//
// Injectable faults, per scripted execution or per worker:
//   - stall:  the job takes a scripted wall-clock delay (or never ends)
//   - 500:    submissions fail with an internal error
//   - 429:    submissions are refused busy, with Retry-After
//   - die:    the test closes the worker's listener (kill())
//   - drain:  /healthz answers 503 draining

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"edm"
	"edm/internal/experiment"
	"edm/internal/server"
)

// Worker modes (submission behaviour).
const (
	modeOK    = iota // accept and run jobs
	mode500          // refuse submissions with 500
	mode429          // refuse submissions with 429 + Retry-After
	modeDrain        // healthz answers draining
)

// exec describes one scripted execution of a cell.
type exec struct {
	worker string // base URL of the worker that accepted it
	n      int    // 1-based execution index for this cell, fleet-wide
}

// fakeFleet is the shared scripting state for a set of fake workers.
type fakeFleet struct {
	mu    sync.Mutex
	count map[string]int // cell workload -> executions accepted so far
	log   []exec

	// delay scripts how long the n-th (1-based) execution of the cell
	// named by workload takes; a negative delay never completes.
	delay func(workload string, n int) time.Duration

	// firstExec receives each cell's first accepted execution, letting
	// tests act (e.g. kill the worker) at a known point.
	firstExec chan exec
}

func newFakeFleet(delay func(workload string, n int) time.Duration) *fakeFleet {
	if delay == nil {
		delay = func(string, int) time.Duration { return 0 }
	}
	return &fakeFleet{
		count:     map[string]int{},
		delay:     delay,
		firstExec: make(chan exec, 64),
	}
}

// accept records an execution and returns its completion deadline.
func (f *fakeFleet) accept(worker, workload string) (doneAt time.Time, never bool) {
	f.mu.Lock()
	f.count[workload]++
	e := exec{worker: worker, n: f.count[workload]}
	f.log = append(f.log, e)
	f.mu.Unlock()
	if e.n == 1 {
		select {
		case f.firstExec <- e:
		default:
		}
	}
	d := f.delay(workload, e.n)
	if d < 0 {
		return time.Time{}, true
	}
	return time.Now().Add(d), false
}

// executions returns how many executions of the cell the fleet accepted.
func (f *fakeFleet) executions(workload string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count[workload]
}

// fakeJob is one accepted job on a fake worker.
type fakeJob struct {
	req    server.RunRequest
	doneAt time.Time
	never  bool
}

// fakeWorker is one scripted edmd stand-in.
type fakeWorker struct {
	fleet *fakeFleet
	ts    *httptest.Server
	mode  atomic.Int64

	mu     sync.Mutex
	nextID int
	jobs   map[string]*fakeJob

	submissions atomic.Uint64
}

func newFakeWorker(fleet *fakeFleet) *fakeWorker {
	w := &fakeWorker{fleet: fleet, jobs: map[string]*fakeJob{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("GET /v1/version", w.handleVersion)
	mux.HandleFunc("POST /v1/runs", w.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", w.handleStatus)
	mux.HandleFunc("DELETE /v1/runs/{id}", func(http.ResponseWriter, *http.Request) {})
	w.ts = httptest.NewServer(mux)
	return w
}

func (w *fakeWorker) url() string { return w.ts.URL }

// kill closes the worker's listener: every in-flight and future call
// fails at the transport, exactly like a crashed process.
func (w *fakeWorker) kill() { w.ts.Close() }

func (w *fakeWorker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	if w.mode.Load() == modeDrain {
		rw.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(rw).Encode(Health{Status: "draining", Workers: 1})
		return
	}
	json.NewEncoder(rw).Encode(Health{Status: "ok", Workers: 1})
}

func (w *fakeWorker) handleVersion(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(server.VersionInfo{Service: "edmd", Version: "fake", Workers: 1})
}

func (w *fakeWorker) handleSubmit(rw http.ResponseWriter, r *http.Request) {
	w.submissions.Add(1)
	rw.Header().Set("Content-Type", "application/json")
	switch w.mode.Load() {
	case mode500:
		rw.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(rw).Encode(server.ErrorBody{Code: "internal", Message: "injected internal error"})
		return
	case mode429:
		rw.Header().Set("Retry-After", "1")
		rw.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(rw).Encode(server.ErrorBody{Code: "queue_full", Message: "injected queue full", RetryAfterS: 1})
		return
	}
	var req server.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rw.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(rw).Encode(server.ErrorBody{Code: "bad_request", Message: err.Error()})
		return
	}
	doneAt, never := w.fleet.accept(w.url(), req.Workload)
	w.mu.Lock()
	w.nextID++
	id := fmt.Sprintf("fake-%d", w.nextID)
	w.jobs[id] = &fakeJob{req: req, doneAt: doneAt, never: never}
	w.mu.Unlock()
	rw.WriteHeader(http.StatusAccepted)
	json.NewEncoder(rw).Encode(server.JobStatus{ID: id, State: server.StateQueued, Request: req})
}

func (w *fakeWorker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	job := w.jobs[r.PathValue("id")]
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	if job == nil {
		rw.WriteHeader(http.StatusNotFound)
		json.NewEncoder(rw).Encode(server.ErrorBody{Code: "not_found", Message: "no such job"})
		return
	}
	view := struct {
		server.JobStatus
		Result *edm.Result `json:"result,omitempty"`
	}{JobStatus: server.JobStatus{ID: r.PathValue("id"), State: server.StateRunning, Request: job.req}}
	if !job.never && time.Now().After(job.doneAt) {
		view.State = server.StateDone
		view.Result = fakeResult(job.req)
	}
	json.NewEncoder(rw).Encode(view)
}

// fakeResult derives a canned result deterministically from the request,
// so tests can verify which spec an accepted result belongs to without
// running a simulation.
func fakeResult(req server.RunRequest) *edm.Result {
	return &edm.Result{
		Trace:         req.Workload,
		OSDs:          req.OSDs,
		Policy:        req.Policy,
		Completed:     int(req.Seed),
		ThroughputOps: float64(req.Scale) + req.Lambda,
	}
}

// fakeSpec builds a distinct cell spec named by workload; the fake
// fleet scripts and logs executions by this name.
func fakeSpec(workload string) experiment.CellSpec {
	return experiment.CellSpec{Trace: workload, OSDs: 8, Policy: experiment.AllPolicies[0], Scale: 100, Seed: 7, Lambda: 0.1}
}

// wantFakeResult is the result every execution of fakeSpec(workload)
// produces, local or remote.
func wantFakeResult(spec experiment.CellSpec) *edm.Result {
	return fakeResult(RequestForCell(spec))
}

// fastClient keeps retry and poll delays test-sized.
func fastClient() ClientConfig {
	return ClientConfig{
		MaxRetries:   2,
		RetryBase:    time.Millisecond,
		RetryMax:     4 * time.Millisecond,
		PollInterval: 2 * time.Millisecond,
	}
}
