// Package dispatch is the distributed sweep coordinator: it shards an
// experiment matrix into independent cell specs, fans them out over a
// fleet of edmd workers through a typed retrying HTTP client, and
// reassembles the results into the exact []experiment.Cell a local
// Matrix run would have produced.
//
// The design leans on one property of the simulation: a cell's result
// is a pure function of its CellSpec. That makes every fault-tolerance
// trick safe — a cell can be retried on the same worker, reassigned to
// another after a crash, hedged while a straggler still runs, or
// executed locally when the whole fleet is down, and the first result
// to arrive is *the* result. Completions are deduplicated by the
// spec's key, so a hedged or reassigned duplicate that finishes late
// is discarded, and the merge is deterministic: cells are emitted in
// the input spec order with results keyed by spec, never by arrival.
//
// Fault model, in escalating order:
//
//   - transient faults (connection refused/reset, 5xx, 429): the
//     Client retries with capped exponential backoff + jitter,
//     honouring Retry-After on 429/503;
//   - worker faults (retries exhausted, worker draining or dead): the
//     Pool marks the worker unhealthy, reassigns its in-flight cells
//     to the rest of the fleet, and re-probes /healthz until the
//     worker returns;
//   - stragglers: a cell in flight longer than HedgeAfter is launched
//     a second time elsewhere, first completion wins;
//   - fleet loss (no workers configured, none healthy): cells run
//     locally through experiment.RunCell — same specs, same results,
//     just slower.
package dispatch

import (
	"errors"
	"time"

	"edm"
	"edm/internal/experiment"
)

// ErrUnavailable tags a worker-level failure: the worker could not be
// reached, kept failing after retries, or is draining. The coordinator
// reacts by marking the worker unhealthy and reassigning the cell;
// test with errors.Is.
var ErrUnavailable = errors.New("dispatch: worker unavailable")

// ErrRunFailed tags a run the worker executed and reported as failed.
// Simulations are deterministic, so the same spec fails everywhere —
// the coordinator records the failure instead of reassigning it.
var ErrRunFailed = errors.New("dispatch: run failed")

// ErrExhausted tags a cell that used up its execution attempts without
// producing a result.
var ErrExhausted = errors.New("dispatch: cell attempts exhausted")

// CellRun is one cell's final outcome plus the story of how it got
// there — which executor's result was accepted, how many executions
// were launched, and whether failover machinery fired.
type CellRun struct {
	Spec   experiment.CellSpec
	Result *edm.Result
	Err    error

	// Worker names the executor whose result was accepted: a worker's
	// base URL, or "local" for the fallback path.
	Worker string
	// Launches counts executions started for this cell, including the
	// original, reassignments and hedges (1 = the happy path).
	Launches int
	// Reassigned counts executions abandoned because their worker
	// became unavailable; Hedged reports a straggler duplicate was
	// launched; Discarded counts duplicate completions thrown away.
	Reassigned int
	Hedged     bool
	Discarded  int
	// Resumed counts executions that continued from a stashed
	// checkpoint frame instead of replaying the cell from scratch
	// (only possible with Config.CheckpointEvery > 0).
	Resumed int
	// Duration is first launch to accepted completion.
	Duration time.Duration
}

// Merge reassembles figure-table cells from completed runs, in input
// order. The slice plugs straight into experiment.Fig5/Fig6/Fig8 —
// when every run succeeded, the tables render byte-identical to a
// local experiment.Matrix of the same Options.
func Merge(runs []CellRun) []experiment.Cell {
	cells := make([]experiment.Cell, len(runs))
	for i, r := range runs {
		cells[i] = r.Spec.Cell(r.Result, r.Err)
	}
	return cells
}
