package edm

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"edm/internal/cluster"
)

// TestSpecJSONRoundTripDrivesIdenticalRun is the wire-format contract
// the distributed sweep rests on: a Spec that crosses process
// boundaries as JSON must drive the same simulation on the far side.
// decode(encode(spec)) is the identity, and running both specs yields
// byte-identical serialized results.
func TestSpecJSONRoundTripDrivesIdenticalRun(t *testing.T) {
	mode := cluster.MigratePeriodic
	specs := map[string]Spec{
		"named workload": {Workload: "home02", OSDs: 16, Policy: PolicyHDF, Scale: 400, Seed: 3},
		"explicit mode":  {Workload: "home03", OSDs: 8, Policy: PolicyCDF, Scale: 400, Seed: 5, Lambda: 0.2, MigrationMode: &mode},
		"baseline":       {Workload: "home02", OSDs: 8, Policy: PolicyBaseline, Scale: 400, Seed: 7},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			b, err := json.Marshal(spec)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var decoded Spec
			if err := json.Unmarshal(b, &decoded); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !reflect.DeepEqual(decoded, spec) {
				t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v\njson: %s", spec, decoded, b)
			}

			want, err := Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("run original: %v", err)
			}
			got, err := Run(context.Background(), decoded)
			if err != nil {
				t.Fatalf("run decoded: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("decoded spec produced a different result")
			}
			wb, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(wb) != string(gb) {
				t.Fatal("decoded spec's result is not byte-identical to the original's")
			}
		})
	}
}

// TestSpecJSONEncodesEnumsByName pins the human-readable encoding the
// fleet protocol (and any stored spec) depends on: enums appear as
// names, not opaque integers.
func TestSpecJSONEncodesEnumsByName(t *testing.T) {
	mode := cluster.MigrateMidpoint
	b, err := json.Marshal(Spec{Workload: "home02", Policy: PolicyCDF, MigrationMode: &mode})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"Policy":"cdf"`) {
		t.Errorf("policy not encoded by name: %s", s)
	}
	if !strings.Contains(s, `"MigrationMode":"midpoint"`) {
		t.Errorf("migration mode not encoded by name: %s", s)
	}
	var decoded Spec
	if err := json.Unmarshal([]byte(`{"Policy":"EDM-HDF","MigrationMode":"never"}`), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Policy != PolicyHDF {
		t.Errorf("Policy = %v, want hdf", decoded.Policy)
	}
	if decoded.MigrationMode == nil || *decoded.MigrationMode != cluster.MigrateNever {
		t.Errorf("MigrationMode = %v, want &never", decoded.MigrationMode)
	}
}
