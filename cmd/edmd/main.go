// Command edmd serves EDM simulation runs over HTTP.
//
// Runs are submitted as jobs, executed on a bounded worker pool behind
// a priority-aware admission queue, and observed by polling or by
// NDJSON streaming. Jobs may carry a priority class (batch, normal,
// interactive) and a tenant for weighted fair-share; when every worker
// is busy, an interactive arrival preempts the youngest lowest-class
// running job through an immediate checkpoint and the victim resumes
// transparently from its frame. A full queue pushes back with 429 +
// Retry-After derived from the live queue-wait estimate; SIGINT or
// SIGTERM drains in-flight jobs before exiting, force-cancelling them
// if the drain deadline passes.
//
//	edmd -addr :8080 -workers 4 -queue 64 -job-timeout 5m
//
//	curl -s localhost:8080/v1/runs -d '{"workload":"home02","policy":"hdf"}'
//	curl -s localhost:8080/v1/runs/run-00000001
//	curl -sN localhost:8080/v1/runs/run-00000001/stream
//	curl -s -X DELETE localhost:8080/v1/runs/run-00000001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (default: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth before submissions get 429")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight jobs before force-cancelling them")
	stateDir := flag.String("state-dir", "",
		"directory for crash-recovery state; jobs interrupted by a restart are re-admitted and resumed from their newest checkpoint (empty: no persistence)")
	checkpointEvery := flag.Uint64("checkpoint-every", 0,
		"default checkpoint cadence in fired simulation events for jobs that do not set their own (0: server default)")
	preemptGrace := flag.Duration("preempt-grace", 0,
		"how long a preempted job gets to checkpoint before it is cancelled outright (0: server default, 3s)")
	shedFraction := flag.Float64("shed-fraction", 0,
		"queue-fill fraction above which batch submissions are shed with 429 (0: server default 0.75; >=1 disables shedding)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "edmd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		StateDir:        *stateDir,
		CheckpointEvery: *checkpointEvery,
		PreemptGrace:    *preemptGrace,
		ShedFraction:    *shedFraction,
	})
	if n := srv.Recovered(); n > 0 {
		log.Printf("edmd: recovered %d interrupted job(s) from %s", n, *stateDir)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("edmd: listening on %s (queue %d)", *addr, *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("edmd: %v", err)
	case sig := <-sigc:
		log.Printf("edmd: %v — draining (deadline %v)", sig, *drainTimeout)
	}

	// Stop accepting connections first, then drain the job queue.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("edmd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("edmd: drain deadline passed, in-flight jobs cancelled")
		} else {
			log.Printf("edmd: drain: %v", err)
		}
		os.Exit(1)
	}
	log.Printf("edmd: drained cleanly")
}
