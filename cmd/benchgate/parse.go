package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`          // GOMAXPROCS suffix stripped
	Iterations  int64   `json:"iterations"`    //
	NsPerOp     float64 `json:"ns_per_op"`     //
	BytesPerOp  float64 `json:"bytes_per_op"`  // present with -benchmem / ReportAllocs
	AllocsPerOp float64 `json:"allocs_per_op"` //
	HasAllocs   bool    `json:"has_allocs"`    // whether the two fields above were reported
}

// Report is the BENCH_sim.json document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// output, ignoring everything else (ok/PASS lines, package headers).
// A name appearing more than once — `go test -count=N` repeats — keeps
// the slowest repeat, so a baseline recorded from several repeats is a
// conservative ceiling rather than a lucky minimum.
func ParseBenchOutput(r io.Reader) (Report, error) {
	var rep Report
	idx := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok, err := parseBenchLine(line)
		if err != nil {
			return Report{}, err
		}
		if !ok {
			continue
		}
		if i, dup := idx[b.Name]; dup {
			if b.NsPerOp > rep.Benchmarks[i].NsPerOp {
				rep.Benchmarks[i] = b
			}
			continue
		}
		idx[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   100   17.19 ns/op   0 B/op   0 allocs/op
//
// ok=false (with nil error) means the line starts with "Benchmark" but
// is not a result line (e.g. a test named TestBenchmarkFoo's output).
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !isNumber(fields[1]) {
		return Benchmark{}, false, nil
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad benchmark line %q: value %q is not a number", line, fields[i])
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
			b.HasAllocs = true
		case "allocs/op":
			b.AllocsPerOp = v
			b.HasAllocs = true
		}
	}
	if b.NsPerOp == 0 && !b.HasAllocs {
		return Benchmark{}, false, nil
	}
	return b, true, nil
}

func isNumber(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}

// Gate holds the comparison thresholds. The fractional tolerances bound
// relative growth; the alloc and byte gates additionally grant a small
// absolute slack (allocSlack, byteSlack) so tiny baselines — 3 allocs,
// 100 bytes — aren't failed by a single extra allocation of noise.
type Gate struct {
	NsTolerance    float64 // allowed fractional ns/op growth
	AllocTolerance float64 // allowed fractional allocs/op growth
	BytesTolerance float64 // allowed fractional bytes/op growth
	AllowMissing   bool    // tolerate baseline entries absent from this run (CI matrix shards)
}

const (
	allocSlack = 2  // absolute allocs/op headroom on top of the fraction
	byteSlack  = 64 // absolute bytes/op headroom on top of the fraction
)

// Compare gates fresh results against a baseline: a benchmark regresses
// if its ns/op, allocs/op, or bytes/op grow beyond the gate's
// tolerances, or if a benchmark that was allocation-free in the
// baseline starts allocating (any growth there is a hot-path leak,
// never noise — the absolute slack does not apply). Benchmarks missing
// from either side are reported too — a silently vanished benchmark
// would otherwise let a regression hide by renaming — unless
// AllowMissing is set, which lets a CI matrix shard gate only the
// subset of the baseline it runs.
func Compare(base, fresh Report, g Gate) []string {
	var failures []string
	freshBy := map[string]Benchmark{}
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	for _, old := range base.Benchmarks {
		now, ok := freshBy[old.Name]
		if !ok {
			if !g.AllowMissing {
				failures = append(failures, fmt.Sprintf("%s: in baseline but not in this run", old.Name))
			}
			continue
		}
		delete(freshBy, old.Name)
		if limit := old.NsPerOp * (1 + g.NsTolerance); now.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.4g ns/op exceeds baseline %.4g ns/op by more than %.0f%%",
				old.Name, now.NsPerOp, old.NsPerOp, g.NsTolerance*100))
		}
		if !old.HasAllocs || !now.HasAllocs {
			continue
		}
		if old.AllocsPerOp == 0 {
			if now.AllocsPerOp > 0 {
				failures = append(failures, fmt.Sprintf("%s: %.4g allocs/op on a zero-allocation baseline",
					old.Name, now.AllocsPerOp))
			}
		} else if limit := old.AllocsPerOp*(1+g.AllocTolerance) + allocSlack; now.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.4g allocs/op exceeds baseline %.4g allocs/op by more than %.0f%%+%d",
				old.Name, now.AllocsPerOp, old.AllocsPerOp, g.AllocTolerance*100, allocSlack))
		}
		if old.BytesPerOp > 0 {
			if limit := old.BytesPerOp*(1+g.BytesTolerance) + byteSlack; now.BytesPerOp > limit {
				failures = append(failures, fmt.Sprintf("%s: %.4g B/op exceeds baseline %.4g B/op by more than %.0f%%+%d",
					old.Name, now.BytesPerOp, old.BytesPerOp, g.BytesTolerance*100, byteSlack))
			}
		}
	}
	for name := range freshBy {
		failures = append(failures, fmt.Sprintf("%s: not in baseline (refresh it to admit new benchmarks)", name))
	}
	sortStrings(failures)
	return failures
}

// sortStrings is a tiny insertion sort; failure lists are short and this
// keeps the output deterministic without importing sort for one call.
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
