// Command benchgate turns `go test -bench` output into a checked-in
// machine-readable baseline (BENCH_sim.json) and gates regressions
// against it: any benchmark whose ns/op grows past the tolerance fails
// the build, as does a steady-state benchmark that starts allocating.
//
// Usage:
//
//	go test -run '^$' -bench ... ./... | benchgate -out BENCH_sim.json
//	go test -run '^$' -bench ... ./... | benchgate -baseline BENCH_sim.json
//
// The first form records a baseline; the second compares a fresh run
// against it (and still writes -out when given, so CI can upload the
// fresh numbers as an artefact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		baseline     = flag.String("baseline", "", "compare parsed results against this BENCH_sim.json; non-zero exit on regression")
		out          = flag.String("out", "", "write parsed results to this file as BENCH_sim.json")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth over the baseline (0.25 = +25%)")
		allocTol     = flag.Float64("alloc-tolerance", 0.25, "allowed fractional allocs/op growth over the baseline (plus a 2 allocs/op absolute slack)")
		bytesTol     = flag.Float64("bytes-tolerance", 0.25, "allowed fractional bytes/op growth over the baseline (plus a 64 B/op absolute slack)")
		allowMissing = flag.Bool("allow-missing", false, "do not fail on baseline benchmarks absent from this run (for CI matrix shards that each run a subset)")
		input        = flag.String("in", "", "read `go test -bench` output from this file instead of stdin")
	)
	flag.Parse()

	if *tolerance < 0 {
		fatalf("bad -tolerance %v (want a non-negative fraction, e.g. 0.25)", *tolerance)
	}
	if *allocTol < 0 {
		fatalf("bad -alloc-tolerance %v (want a non-negative fraction, e.g. 0.25)", *allocTol)
	}
	if *bytesTol < 0 {
		fatalf("bad -bytes-tolerance %v (want a non-negative fraction, e.g. 0.25)", *bytesTol)
	}
	if *baseline == "" && *out == "" {
		fatalf("nothing to do: give -out to record a baseline, -baseline to gate against one, or both")
	}

	src := os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	report, err := ParseBenchOutput(src)
	if err != nil {
		fatalf("%v", err)
	}
	if len(report.Benchmarks) == 0 {
		fatalf("no benchmark lines found in input (is -bench output being piped in?)")
	}

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	}

	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fatalf("%v", err)
		}
		var base Report
		if err := json.Unmarshal(buf, &base); err != nil {
			fatalf("parsing %s: %v", *baseline, err)
		}
		failures := Compare(base, report, Gate{
			NsTolerance:    *tolerance,
			AllocTolerance: *allocTol,
			BytesTolerance: *bytesTol,
			AllowMissing:   *allowMissing,
		})
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: %s\n", f)
		}
		if len(failures) > 0 {
			fatalf("%d benchmark(s) regressed beyond %.0f%% of %s", len(failures), *tolerance*100, *baseline)
		}
		fmt.Printf("benchgate: %d benchmarks within %.0f%% of %s\n", len(report.Benchmarks), *tolerance*100, *baseline)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
