package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		want    []Benchmark
		wantErr string // substring; "" means success
	}{
		{
			name: "full allocs line",
			input: "goos: linux\n" +
				"BenchmarkEngineAfterStep-8   \t 66477436\t        17.08 ns/op\t       0 B/op\t       0 allocs/op\n" +
				"ok  \tedm/internal/sim\t1.5s\n",
			want: []Benchmark{{
				Name: "BenchmarkEngineAfterStep", Iterations: 66477436,
				NsPerOp: 17.08, BytesPerOp: 0, AllocsPerOp: 0, HasAllocs: true,
			}},
		},
		{
			name:  "no benchmem",
			input: "BenchmarkWearModelInversion \t  500000\t      2100 ns/op\n",
			want: []Benchmark{{
				Name: "BenchmarkWearModelInversion", Iterations: 500000, NsPerOp: 2100,
			}},
		},
		{
			name:  "gomaxprocs suffix stripped",
			input: "BenchmarkFlashWrite-16 \t  100\t 72.58 ns/op\t 10 B/op\t 0 allocs/op\n",
			want: []Benchmark{{
				Name: "BenchmarkFlashWrite", Iterations: 100,
				NsPerOp: 72.58, BytesPerOp: 10, AllocsPerOp: 0, HasAllocs: true,
			}},
		},
		{
			name: "multiple benchmarks",
			input: "BenchmarkA \t 10\t 1.0 ns/op\n" +
				"BenchmarkB \t 20\t 2.0 ns/op\n",
			want: []Benchmark{
				{Name: "BenchmarkA", Iterations: 10, NsPerOp: 1},
				{Name: "BenchmarkB", Iterations: 20, NsPerOp: 2},
			},
		},
		{
			name:  "non-result Benchmark prefix ignored",
			input: "BenchmarkClusterRun output follows\nBenchmarkA \t 10\t 1.0 ns/op\n",
			want:  []Benchmark{{Name: "BenchmarkA", Iterations: 10, NsPerOp: 1}},
		},
		{
			name:    "empty input",
			input:   "PASS\nok  \tedm\t0.1s\n",
			want:    nil,
			wantErr: "",
		},
		{
			name: "count repeats keep the slowest",
			input: "BenchmarkA \t 10\t 1.0 ns/op\n" +
				"BenchmarkA \t 12\t 1.4 ns/op\n" +
				"BenchmarkA \t 11\t 1.2 ns/op\n",
			want: []Benchmark{{Name: "BenchmarkA", Iterations: 12, NsPerOp: 1.4}},
		},
		{
			name:    "garbled value rejected",
			input:   "BenchmarkA \t 10\t notanumber ns/op\n",
			wantErr: `value "notanumber" is not a number`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := ParseBenchOutput(strings.NewReader(tc.input))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseBenchOutput = %v, want error containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseBenchOutput: %v", err)
			}
			if len(rep.Benchmarks) != len(tc.want) {
				t.Fatalf("parsed %d benchmarks, want %d: %+v", len(rep.Benchmarks), len(tc.want), rep.Benchmarks)
			}
			for i, want := range tc.want {
				if rep.Benchmarks[i] != want {
					t.Errorf("benchmark %d = %+v, want %+v", i, rep.Benchmarks[i], want)
				}
			}
		})
	}
}

func TestCompare(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 0, HasAllocs: true},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkD", NsPerOp: 500, AllocsPerOp: 100, BytesPerOp: 4096, HasAllocs: true},
	}}
	quarter := Gate{NsTolerance: 0.25, AllocTolerance: 0.25, BytesTolerance: 0.25}
	withMissing := quarter
	withMissing.AllowMissing = true
	okD := Benchmark{Name: "BenchmarkD", NsPerOp: 500, AllocsPerOp: 100, BytesPerOp: 4096, HasAllocs: true}
	cases := []struct {
		name  string
		fresh Report
		gate  Gate
		want  []string // substring per expected failure, in order
	}{
		{
			name: "within tolerance",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 120, HasAllocs: true},
				{Name: "BenchmarkB", NsPerOp: 1240},
				{Name: "BenchmarkD", NsPerOp: 600, AllocsPerOp: 127, BytesPerOp: 5184, HasAllocs: true},
			}},
			gate: quarter,
		},
		{
			name: "ns regression",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 126, HasAllocs: true},
				{Name: "BenchmarkB", NsPerOp: 1000},
				okD,
			}},
			gate: quarter,
			want: []string{"BenchmarkA: 126 ns/op exceeds baseline 100 ns/op"},
		},
		{
			name: "zero-alloc baseline starts allocating",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 2, HasAllocs: true},
				{Name: "BenchmarkB", NsPerOp: 1000},
				okD,
			}},
			gate: quarter,
			want: []string{"BenchmarkA: 2 allocs/op on a zero-allocation baseline"},
		},
		{
			name: "alloc regression beyond fraction plus slack",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 100, HasAllocs: true},
				{Name: "BenchmarkB", NsPerOp: 1000},
				{Name: "BenchmarkD", NsPerOp: 500, AllocsPerOp: 128, BytesPerOp: 4096, HasAllocs: true},
			}},
			gate: quarter,
			want: []string{"BenchmarkD: 128 allocs/op exceeds baseline 100 allocs/op"},
		},
		{
			name: "bytes regression beyond fraction plus slack",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 100, HasAllocs: true},
				{Name: "BenchmarkB", NsPerOp: 1000},
				{Name: "BenchmarkD", NsPerOp: 500, AllocsPerOp: 100, BytesPerOp: 5185, HasAllocs: true},
			}},
			gate: quarter,
			want: []string{"BenchmarkD: 5185 B/op exceeds baseline 4096 B/op"},
		},
		{
			name: "missing and unknown benchmarks",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 100, HasAllocs: true},
				{Name: "BenchmarkC", NsPerOp: 5},
				okD,
			}},
			gate: quarter,
			want: []string{
				"BenchmarkB: in baseline but not in this run",
				"BenchmarkC: not in baseline",
			},
		},
		{
			name: "allow-missing gates only the shard's subset",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 100, HasAllocs: true},
			}},
			gate: withMissing,
		},
		{
			name: "allow-missing still rejects unknown benchmarks",
			fresh: Report{Benchmarks: []Benchmark{
				{Name: "BenchmarkC", NsPerOp: 5},
			}},
			gate: withMissing,
			want: []string{"BenchmarkC: not in baseline"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Compare(base, tc.fresh, tc.gate)
			if len(got) != len(tc.want) {
				t.Fatalf("Compare = %v, want %d failure(s) %v", got, len(tc.want), tc.want)
			}
			for i, want := range tc.want {
				if !strings.Contains(got[i], want) {
					t.Errorf("failure %d = %q, want it to contain %q", i, got[i], want)
				}
			}
		})
	}
}
