// Command tracegen materialises the synthetic Harvard-style workloads
// as trace files (the package trace text format) and prints their
// Table I characteristics.
//
// Usage:
//
//	tracegen -workload home02 -scale 10 -out home02.trace
//	tracegen -list
//	tracegen -workload random -ops 100000 -files 500 -out r.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"edm/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "", "built-in workload name, or 'random'")
		scale     = flag.Int("scale", 1, "scale divisor (1 = full Table I size)")
		seed      = flag.Uint64("seed", 42, "generation seed")
		out       = flag.String("out", "", "output file ('-' or empty = stdout)")
		list      = flag.Bool("list", false, "list built-in workloads and exit")
		files     = flag.Int("files", 2000, "random workload: file count")
		ops       = flag.Int("ops", 400000, "random workload: write count")
		statsOnly = flag.Bool("stats", false, "print characteristics only, no trace body")
	)
	flag.Parse()

	if *list {
		fmt.Println("built-in workloads (Table I):")
		for _, name := range trace.ProfileNames() {
			p, _ := trace.LookupProfile(name)
			fmt.Printf("  %-8s files=%6d writes=%7d avgW=%6dB reads=%8d avgR=%6dB users=%d\n",
				name, p.FileCount, p.WriteCount, p.AvgWriteSize, p.ReadCount, p.AvgReadSize, p.Users)
		}
		fmt.Println("  random   (Fig. 3's uniform 4-16KB write workload; -files/-ops set its size)")
		return
	}
	if *workload == "" {
		fatalf("missing -workload (try -list)")
	}

	var p trace.Profile
	if *workload == "random" {
		p = trace.RandomProfile(*files, *ops)
	} else {
		prof, ok := trace.LookupProfile(*workload)
		if !ok {
			fatalf("unknown workload %q (try -list)", *workload)
		}
		p = prof
	}
	p = p.Scaled(*scale)

	tr, err := trace.Generate(p, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	st := tr.Stats()
	fmt.Fprintf(os.Stderr,
		"%s: %d files, %d writes (avg %dB), %d reads (avg %dB), %d records, %.1f MB of file data\n",
		tr.Name, st.FileCount, st.WriteCount, st.AvgWriteSize, st.ReadCount, st.AvgReadSize,
		len(tr.Records), float64(st.TotalBytes)/(1<<20))
	if *statsOnly {
		return
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := tr.Encode(w); err != nil {
		fatalf("encoding: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
