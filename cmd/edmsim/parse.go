package main

import (
	"fmt"
	"strings"

	"edm"
	"edm/internal/cluster"
	"edm/internal/trace"
)

// policyNames lists the valid -policy values in presentation order.
var policyNames = []string{"baseline", "cmt", "hdf", "cdf"}

// parsePolicy maps the -policy flag to a library policy. Unknown values
// yield an error naming every valid option.
func parsePolicy(s string) (edm.Policy, error) {
	switch s {
	case "baseline":
		return edm.PolicyBaseline, nil
	case "cmt":
		return edm.PolicyCMT, nil
	case "hdf":
		return edm.PolicyHDF, nil
	case "cdf":
		return edm.PolicyCDF, nil
	}
	return 0, fmt.Errorf("unknown policy %q (valid: %s)", s, strings.Join(policyNames, ", "))
}

// migrationNames lists the valid -migration values.
var migrationNames = []string{"never", "midpoint", "periodic"}

// parseMigrationMode maps the -migration flag to a controller mode. The
// empty string means "not set" (set=false); unknown values yield an
// error naming every valid option.
func parseMigrationMode(s string) (mode cluster.MigrationMode, set bool, err error) {
	switch s {
	case "":
		return cluster.MigrateNever, false, nil
	case "never":
		return cluster.MigrateNever, true, nil
	case "midpoint":
		return cluster.MigrateMidpoint, true, nil
	case "periodic":
		return cluster.MigratePeriodic, true, nil
	}
	return 0, false, fmt.Errorf("unknown migration mode %q (valid: %s)", s, strings.Join(migrationNames, ", "))
}

// validateWorkload checks a -workload name against the built-in
// profiles, naming them all on error.
func validateWorkload(s string) error {
	if s == "random" {
		return nil
	}
	if _, ok := trace.LookupProfile(s); ok {
		return nil
	}
	return fmt.Errorf("unknown workload %q (valid: %s, random)", s, strings.Join(trace.ProfileNames(), ", "))
}
