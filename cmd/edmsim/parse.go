package main

import (
	"fmt"
	"strings"

	"edm"
	"edm/internal/cluster"
	"edm/internal/trace"
)

// parsePolicy maps the -policy flag to a library policy; the library
// parser also accepts the figure labels (EDM-HDF, ...).
func parsePolicy(s string) (edm.Policy, error) {
	return edm.ParsePolicy(s)
}

// migrationNames lists the valid -migration values.
var migrationNames = []string{"never", "midpoint", "periodic"}

// parseMigrationMode maps the -migration flag to a controller mode
// override. The empty string means "not set" and returns nil, which
// keeps the Spec's policy-derived default; unknown values yield an
// error naming every valid option.
func parseMigrationMode(s string) (*cluster.MigrationMode, error) {
	var mode cluster.MigrationMode
	switch s {
	case "":
		return nil, nil
	case "never":
		mode = cluster.MigrateNever
	case "midpoint":
		mode = cluster.MigrateMidpoint
	case "periodic":
		mode = cluster.MigratePeriodic
	default:
		return nil, fmt.Errorf("unknown migration mode %q (valid: %s)", s, strings.Join(migrationNames, ", "))
	}
	return &mode, nil
}

// validateWorkload checks a -workload name against the built-in
// profiles, naming them all on error.
func validateWorkload(s string) error {
	if s == "random" {
		return nil
	}
	if _, ok := trace.LookupProfile(s); ok {
		return nil
	}
	return fmt.Errorf("unknown workload %q (valid: %s, random)", s, strings.Join(trace.ProfileNames(), ", "))
}
