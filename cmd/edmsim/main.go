// Command edmsim replays one workload on one simulated cluster and
// prints a full result summary — the single-run workhorse behind the
// figures.
//
// Usage:
//
//	edmsim -workload home02 -osds 16 -policy hdf -scale 20
//	edmsim -trace /tmp/my.trace -policy cmt
//	edmsim -workload lair62 -policy cdf -migration periodic -lambda 0.2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"edm"
	"edm/internal/chaos"
	"edm/internal/check"
	"edm/internal/metrics"
	"edm/internal/prof"
	"edm/internal/sim"
	"edm/internal/telemetry"
	"edm/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "home02", "built-in workload (home02..lair62b, random); ignored with -trace")
		traceFile = flag.String("trace", "", "replay a trace file written by tracegen instead of a built-in workload")
		osds      = flag.Int("osds", 16, "number of OSDs")
		groups    = flag.Int("groups", 4, "placement groups m")
		k         = flag.Int("k", 4, "objects per file (RAID-5 width)")
		policyStr = flag.String("policy", "baseline", "baseline | cmt | hdf | cdf")
		scale     = flag.Int("scale", 20, "workload scale divisor (1 = full Table I size)")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		lambda    = flag.Float64("lambda", 0.1, "trigger threshold λ")
		migration = flag.String("migration", "", "override controller mode: never | midpoint | periodic")
		timeout   = flag.Duration("timeout", 0, "wall-clock cap on the run (0 = none); Ctrl-C also cancels")
		selfCheck = flag.Bool("check", false, "run with invariant checking: event-stream checker + end-of-run state audit; non-zero exit on any violation")
		chaosPlan = flag.String("chaos", "", "inject faults from a chaos plan JSON file (see internal/chaos); non-zero exit on a fault-aware invariant violation")

		checkpointFile  = flag.String("checkpoint", "", "append digest-sealed snapshot frames to this file during the run (continue a killed run with -resume)")
		checkpointEvery = flag.Uint64("checkpoint-every", 0, "checkpoint cadence in fired simulation events (0: the built-in default)")
		resumeFile      = flag.String("resume", "", "resume from the newest complete frame in this checkpoint file; the frame's embedded spec replaces the workload flags")
		series          = flag.Bool("series", false, "print the response-time series (Fig. 7 view)")
		perOSD          = flag.Bool("per-osd", false, "print per-OSD erase counts, write pages and utilizations")
		jsonOut         = flag.Bool("json", false, "emit the full result as JSON (for scripting)")

		telemetryDir    = flag.String("telemetry-dir", "", "write events.ndjson, snapshots.csv and trace.json (chrome://tracing) here")
		telemetryEvents = flag.String("telemetry-events", "all", "event classes to record: "+strings.Join(telemetry.ClassNames(), ","))
		telemetrySample = flag.Float64("telemetry-sample", 30, "metric snapshot interval in virtual seconds")

		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile (runtime/pprof) to this file at exit")
		execProfile = flag.String("execprofile", "", "write an execution trace (runtime/trace, go tool trace) to this file")
	)
	flag.Parse()

	profStop, err := prof.Start(prof.Config{CPU: *cpuProfile, Mem: *memProfile, Exec: *execProfile})
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := profStop(); err != nil {
			fatalf("%v", err)
		}
	}()

	policy, err := parsePolicy(*policyStr)
	if err != nil {
		fatalf("%v", err)
	}

	if *traceFile == "" {
		if err := validateWorkload(*workload); err != nil {
			fatalf("%v", err)
		}
	}

	spec := edm.Spec{
		Workload:       *workload,
		OSDs:           *osds,
		Groups:         *groups,
		ObjectsPerFile: *k,
		Policy:         policy,
		Scale:          *scale,
		Seed:           *seed,
		Lambda:         *lambda,
	}
	mode, err := parseMigrationMode(*migration)
	if err != nil {
		fatalf("%v", err)
	}
	spec.MigrationMode = mode

	// The run context: cancelled by Ctrl-C, and by -timeout if set.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sinkCfg := telemetry.SinkConfig{
		Dir:    *telemetryDir,
		Events: *telemetryEvents,
		Sample: sim.Time(*telemetrySample * float64(sim.Second)),
	}
	sink, err := sinkCfg.NewSink("")
	if err != nil {
		fatalf("%v", err)
	}
	if sink != nil {
		spec.Cluster.Recorder = sink.Tracer
		spec.Cluster.Metrics = sink.Registry
		spec.Cluster.SampleInterval = sinkCfg.Sample
	}

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			fatalf("decoding %s: %v", *traceFile, err)
		}
		spec.Trace = tr
	}

	// -chaos decorates the recorder chain with the fault injector
	// (outermost, so it sees migration rounds before the checker does)
	// and schedules the plan's timed faults on the built cluster. The
	// injector is process-local and armed on a hand-built cluster, so
	// the chaos path cannot combine with -checkpoint/-resume — the
	// injector cannot be rebuilt from a frame (internal/chaos's
	// snapshot round-trip test resumes scenarios by rebuilding the
	// whole env instead).
	var inj *chaos.Injector
	var plan chaos.Plan
	if *chaosPlan != "" {
		if *checkpointFile != "" || *resumeFile != "" {
			fatalf("-chaos cannot combine with -checkpoint/-resume")
		}
		data, err := os.ReadFile(*chaosPlan)
		if err != nil {
			fatalf("%v", err)
		}
		if err := json.Unmarshal(data, &plan); err != nil {
			fatalf("decoding %s: %v", *chaosPlan, err)
		}
		if err := plan.Validate(*osds); err != nil {
			fatalf("%v", err)
		}
	}

	// Checkpoint frames append to one file: a torn final frame after a
	// SIGKILL costs at most the newest checkpoint on resume.
	var runOpts []edm.RunOption
	if *checkpointFile != "" {
		w, err := os.OpenFile(*checkpointFile, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatalf("%v", err)
		}
		defer w.Close()
		runOpts = append(runOpts, edm.WithCheckpoint(w, *checkpointEvery))
	}
	if *selfCheck {
		runOpts = append(runOpts, edm.WithCheck())
	}

	var res *edm.Result
	switch {
	case *resumeFile != "":
		// The frame's embedded spec rebuilds the run; re-attach the
		// process-local telemetry sinks so the regenerated event log and
		// metric columns cover the whole run, not just the tail.
		if *traceFile != "" {
			fatalf("-resume replays the checkpoint's embedded spec; drop -trace")
		}
		if sink != nil {
			runOpts = append(runOpts, edm.WithTelemetry(sink.Tracer), edm.WithMetrics(sink.Registry))
		}
		f, err := os.Open(*resumeFile)
		if err != nil {
			fatalf("%v", err)
		}
		res, err = edm.Resume(ctx, f, runOpts...)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
	case *chaosPlan != "":
		// Hand-built cluster: the injector (and, with -check, the
		// checker) wrap the recorder before construction, and the plan's
		// timed faults arm on the built cluster.
		var ck *check.Checker
		if *selfCheck {
			ck = check.Wrap(spec.Cluster.Recorder)
			spec.Cluster.Recorder = ck
			spec.Cluster.SelfCheck = true
		}
		inj = chaos.NewInjector(spec.Cluster.Recorder, plan)
		spec.Cluster.Recorder = inj
		cl, err := edm.NewCluster(spec)
		if err != nil {
			fatalf("%v", err)
		}
		if ck != nil {
			check.Bind(ck, cl)
		}
		inj.Arm(cl, plan)
		if res, err = cl.RunContext(ctx); err != nil {
			fatalf("%v", err)
		}
		if ck != nil {
			rep := check.Audit(cl, ck)
			if err := rep.Err(); err != nil {
				fatalf("%v\n%s", err, rep)
			}
			fmt.Fprintf(os.Stderr, "check: %s\n", rep)
		}
		if v := inj.Violations(res); len(v) > 0 {
			fatalf("chaos: %s", strings.Join(v, "; "))
		}
		fmt.Fprintf(os.Stderr, "chaos: %d fault window(s); %d degraded, %d lost ops\n",
			inj.Windows(), res.DegradedOps, res.LostOps)
	default:
		var err error
		if res, err = edm.Run(ctx, spec, runOpts...); err != nil {
			fatalf("%v", err)
		}
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: %d events -> %s\n",
			sink.Tracer.Len(), strings.Join(sink.Files(), ", "))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("encoding JSON: %v", err)
		}
		return
	}

	fmt.Printf("trace      %s\n", res.Trace)
	fmt.Printf("policy     %s\n", res.Policy)
	fmt.Printf("OSDs       %d\n", res.OSDs)
	fmt.Printf("completed  %d ops over %s of virtual time\n", res.Completed, res.Makespan)
	fmt.Printf("throughput %.1f ops/s\n", res.ThroughputOps)
	fmt.Printf("response   mean %.3f ms, p99 %.3f ms\n", res.MeanResponse*1000, res.P99Response*1000)
	fmt.Printf("erases     %d aggregate (RSD %.3f)\n", res.AggregateErases, rsd(res.EraseCounts))
	fmt.Printf("writes     %d host pages\n", res.AggregateWrites)
	if res.Migrations > 0 {
		fmt.Printf("migration  %d round(s): %d objects, %.1f MB, window %s – %s\n",
			res.Migrations, res.MovedObjects, float64(res.MovedBytes)/(1<<20),
			res.MigrationStart, res.MigrationEnd)
		fmt.Printf("remap      %d entries (peak %d)\n", res.RemapEntries, res.RemapPeak)
	}
	if res.Rejected > 0 {
		fmt.Printf("REJECTED   %d operations (capacity pressure)\n", res.Rejected)
	}

	if *perOSD {
		fmt.Println("\nper-OSD:")
		fmt.Printf("%4s %10s %12s %6s %6s\n", "osd", "erases", "write-pages", "util", "busy")
		for i := range res.EraseCounts {
			fmt.Printf("%4d %10d %12d %5.2f %5.2f\n",
				i, res.EraseCounts[i], res.WritePages[i], res.Utilizations[i], res.BusyFractions[i])
		}
	}
	if *series {
		fmt.Println("\nresponse-time series (bucket start, mean ms, ops):")
		for _, p := range res.ResponseSeries {
			fmt.Printf("%8.0fs %10.3f %8d\n", p.Time, p.Mean*1000, p.Count)
		}
	}
}

func rsd(xs []uint64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return metrics.RSD(fs)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edmsim: "+format+"\n", args...)
	os.Exit(1)
}
