package main

import (
	"strings"
	"testing"

	"edm"
	"edm/internal/cluster"
)

func TestParsePolicy(t *testing.T) {
	// parsePolicy delegates to edm.ParsePolicy, which is
	// case-insensitive and also accepts the figure labels.
	cases := []struct {
		in      string
		want    edm.Policy
		wantErr bool
	}{
		{"baseline", edm.PolicyBaseline, false},
		{"cmt", edm.PolicyCMT, false},
		{"hdf", edm.PolicyHDF, false},
		{"cdf", edm.PolicyCDF, false},
		{"HDF", edm.PolicyHDF, false},
		{"EDM-HDF", edm.PolicyHDF, false},
		{"", 0, true},
		{"bogus", 0, true},
	}
	for _, c := range cases {
		got, err := parsePolicy(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parsePolicy(%q): want error, got %v", c.in, got)
			} else if !strings.Contains(err.Error(), "baseline") {
				t.Errorf("parsePolicy(%q) error %q should list valid policies", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("parsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseMigrationMode(t *testing.T) {
	// The empty flag means "not set" and must return a nil override so
	// edm.Spec falls back to its policy-derived default.
	cases := []struct {
		in      string
		want    *cluster.MigrationMode
		wantErr bool
	}{
		{"", nil, false},
		{"never", modePtr(cluster.MigrateNever), false},
		{"midpoint", modePtr(cluster.MigrateMidpoint), false},
		{"periodic", modePtr(cluster.MigratePeriodic), false},
		{"sometimes", nil, true},
		{"Midpoint", nil, true},
	}
	for _, c := range cases {
		got, err := parseMigrationMode(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseMigrationMode(%q): want error, got %v", c.in, got)
			} else if !strings.Contains(err.Error(), "valid:") ||
				!strings.Contains(err.Error(), "midpoint") {
				t.Errorf("parseMigrationMode(%q) error %q should list valid modes", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMigrationMode(%q): %v", c.in, err)
			continue
		}
		switch {
		case (got == nil) != (c.want == nil):
			t.Errorf("parseMigrationMode(%q) = %v, want %v", c.in, got, c.want)
		case got != nil && *got != *c.want:
			t.Errorf("parseMigrationMode(%q) = %v, want %v", c.in, *got, *c.want)
		}
	}
}

func modePtr(m cluster.MigrationMode) *cluster.MigrationMode {
	return &m
}

func TestValidateWorkload(t *testing.T) {
	for _, ok := range []string{"home02", "deasna", "lair62b", "random"} {
		if err := validateWorkload(ok); err != nil {
			t.Errorf("validateWorkload(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "home99", "HOME02", "web"} {
		err := validateWorkload(bad)
		if err == nil {
			t.Errorf("validateWorkload(%q): want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "valid:") ||
			!strings.Contains(err.Error(), "home02") ||
			!strings.Contains(err.Error(), "random") {
			t.Errorf("validateWorkload(%q) error %q should list the built-in workloads", bad, err)
		}
	}
}
