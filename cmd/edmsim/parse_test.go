package main

import (
	"strings"
	"testing"

	"edm"
	"edm/internal/cluster"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    edm.Policy
		wantErr bool
	}{
		{"baseline", edm.PolicyBaseline, false},
		{"cmt", edm.PolicyCMT, false},
		{"hdf", edm.PolicyHDF, false},
		{"cdf", edm.PolicyCDF, false},
		{"", 0, true},
		{"HDF", 0, true},
		{"edm-hdf", 0, true},
		{"bogus", 0, true},
	}
	for _, c := range cases {
		got, err := parsePolicy(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parsePolicy(%q): want error, got %v", c.in, got)
			} else if !strings.Contains(err.Error(), "valid:") ||
				!strings.Contains(err.Error(), "baseline") {
				t.Errorf("parsePolicy(%q) error %q should list valid policies", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("parsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseMigrationMode(t *testing.T) {
	cases := []struct {
		in      string
		want    cluster.MigrationMode
		wantSet bool
		wantErr bool
	}{
		{"", cluster.MigrateNever, false, false},
		{"never", cluster.MigrateNever, true, false},
		{"midpoint", cluster.MigrateMidpoint, true, false},
		{"periodic", cluster.MigratePeriodic, true, false},
		{"sometimes", 0, false, true},
		{"Midpoint", 0, false, true},
	}
	for _, c := range cases {
		got, set, err := parseMigrationMode(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseMigrationMode(%q): want error, got %v", c.in, got)
			} else if !strings.Contains(err.Error(), "valid:") ||
				!strings.Contains(err.Error(), "midpoint") {
				t.Errorf("parseMigrationMode(%q) error %q should list valid modes", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMigrationMode(%q): %v", c.in, err)
			continue
		}
		if got != c.want || set != c.wantSet {
			t.Errorf("parseMigrationMode(%q) = (%v, %v), want (%v, %v)",
				c.in, got, set, c.want, c.wantSet)
		}
	}
}

func TestValidateWorkload(t *testing.T) {
	for _, ok := range []string{"home02", "deasna", "lair62b", "random"} {
		if err := validateWorkload(ok); err != nil {
			t.Errorf("validateWorkload(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "home99", "HOME02", "web"} {
		err := validateWorkload(bad)
		if err == nil {
			t.Errorf("validateWorkload(%q): want error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "valid:") ||
			!strings.Contains(err.Error(), "home02") ||
			!strings.Contains(err.Error(), "random") {
			t.Errorf("validateWorkload(%q) error %q should list the built-in workloads", bad, err)
		}
	}
}
