package main

import (
	"fmt"
	"strconv"
	"strings"
)

// experimentNames lists the valid -exp values in run order. "stress"
// (the randomized fault-injection harness) must be requested by name:
// "all" reproduces the paper's evaluation and excludes it.
var experimentNames = []string{
	"check", "table1", "fig1", "fig3", "fig5", "fig6", "fig7", "fig8",
	"ablation", "reliability", "stress",
}

// parseExperiments expands the comma-separated -exp flag into the
// requested experiment set, rejecting unknown names upfront (before any
// simulation time is spent) with an error naming every valid option.
func parseExperiments(s string) (map[string]bool, error) {
	want := map[string]bool{}
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e == "" {
			continue
		}
		if e == "all" {
			for _, k := range experimentNames {
				if k == "stress" {
					continue
				}
				want[k] = true
			}
			continue
		}
		known := false
		for _, k := range experimentNames {
			if e == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s, all)",
				e, strings.Join(experimentNames, ", "))
		}
		want[e] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("no experiments selected (valid: %s, all)",
			strings.Join(experimentNames, ", "))
	}
	return want, nil
}

// parseOSDCounts parses the comma-separated -osds list of cluster sizes.
func parseOSDCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -osds value %q (want a comma-separated list of positive cluster sizes, e.g. 16,20)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
