package main

import (
	"strings"
	"testing"
)

func TestParseExperiments(t *testing.T) {
	cases := []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{"all", allExperiments(), false},
		{"stress", []string{"stress"}, false},
		{"all,stress", append(allExperiments(), "stress"), false},
		{"fig5", []string{"fig5"}, false},
		{"fig1,fig6", []string{"fig1", "fig6"}, false},
		{" Table1 , FIG7 ", []string{"table1", "fig7"}, false},
		{"fig9", nil, true},
		{"fig1,bogus", nil, true},
		{"", nil, true},
		{",", nil, true},
	}
	for _, c := range cases {
		got, err := parseExperiments(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseExperiments(%q): want error, got %v", c.in, got)
			} else if !strings.Contains(err.Error(), "valid:") ||
				!strings.Contains(err.Error(), "table1") {
				t.Errorf("parseExperiments(%q) error %q should list valid experiments", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseExperiments(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseExperiments(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for _, name := range c.want {
			if !got[name] {
				t.Errorf("parseExperiments(%q) missing %q", c.in, name)
			}
		}
	}
}

// allExperiments is what "all" must expand to: every experiment
// except stress, which is opt-in by name.
func allExperiments() []string {
	var out []string
	for _, k := range experimentNames {
		if k != "stress" {
			out = append(out, k)
		}
	}
	return out
}

func TestParseOSDCounts(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"16", []int{16}, false},
		{"16,20", []int{16, 20}, false},
		{" 8 , 12 ", []int{8, 12}, false},
		{"", nil, true},
		{"0", nil, true},
		{"-4", nil, true},
		{"16,x", nil, true},
	}
	for _, c := range cases {
		got, err := parseOSDCounts(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseOSDCounts(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseOSDCounts(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseOSDCounts(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseOSDCounts(%q)[%d] = %d, want %d", c.in, i, got[i], c.want[i])
			}
		}
	}
}
