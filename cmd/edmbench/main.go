// Command edmbench regenerates the EDM paper's evaluation (§V): every
// table and figure, plus this reproduction's ablation studies.
//
// Usage:
//
//	edmbench -exp all                 # everything (minutes at scale 10)
//	edmbench -exp fig5 -scale 20      # one experiment, smaller workload
//	edmbench -exp fig1,fig6 -osds 16  # several, single cluster size
//
// Experiments: check, table1, fig1, fig3, fig5, fig6, fig7, fig8,
// ablation, reliability, stress. Figs. 5, 6 and 8 are projections of one
// shared run matrix and are computed together when requested together.
// check runs the golden-shape regression suite (internal/check) and
// exits non-zero naming the first failing shape. stress runs the
// randomized fault-injection harness (internal/chaos) — excluded from
// "all", request it by name:
//
//	edmbench -exp stress -stress-n 2000 -stress-artifacts repros/
//	edmbench -stress-replay repros/repro-....json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"edm/internal/chaos"
	"edm/internal/check"
	"edm/internal/experiment"
	"edm/internal/prof"
	"edm/internal/sim"
	"edm/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments: check,table1,fig1,fig3,fig5,fig6,fig7,fig8,ablation,reliability,stress,all (all excludes stress)")
		scale    = flag.Int("scale", 20, "workload scale divisor (1 = full Table I size)")
		seed     = flag.Uint64("seed", 42, "experiment seed")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = NumCPU)")
		osds     = flag.String("osds", "16,20", "comma-separated cluster sizes for the matrix experiments")
		lambda   = flag.Float64("lambda", 0.1, "wear-imbalance trigger threshold λ")
		selfchk  = flag.Bool("check", false, "run every experiment simulation with the cluster state self-check enabled")
		timeout  = flag.Duration("timeout", 0, "wall-clock cap on the whole invocation (0 = none); Ctrl-C also cancels")

		stressN         = flag.Int("stress-n", 1000, "stress: number of randomized scenarios (seeded from -seed)")
		stressBudget    = flag.Duration("stress-budget", 0, "stress: wall-clock budget (0 = none); checked between scenarios")
		stressArtifacts = flag.String("stress-artifacts", "chaos-repros", "stress: directory for shrunk repro JSON artifacts (empty disables)")
		stressReplay    = flag.String("stress-replay", "", "replay one repro JSON artifact and verify its recorded verdict, then exit")

		telemetryDir    = flag.String("telemetry-dir", "", "write per-run event logs, snapshot CSVs and Chrome traces here")
		telemetryEvents = flag.String("telemetry-events", "all", "event classes to record: "+strings.Join(telemetry.ClassNames(), ","))
		telemetrySample = flag.Float64("telemetry-sample", 30, "metric snapshot interval in virtual seconds")

		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile (runtime/pprof) to this file at exit")
		execProfile = flag.String("execprofile", "", "write an execution trace (runtime/trace, go tool trace) to this file")
	)
	flag.Parse()

	profStop, err := prof.Start(prof.Config{CPU: *cpuProfile, Mem: *memProfile, Exec: *execProfile})
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := profStop(); err != nil {
			fatalf("%v", err)
		}
	}()

	// -stress-replay is a standalone mode: load one repro artifact,
	// rerun its scenario, and verify the recorded verdict byte for
	// byte. Exit 0 means "faithfully reproduced" — even when the
	// reproduced verdict is a violation; that is the artifact's point.
	if *stressReplay != "" {
		r, err := chaos.ReadRepro(*stressReplay)
		if err != nil {
			fatalf("%v", err)
		}
		v, match, err := chaos.Replay(r)
		if err != nil {
			fatalf("replaying %s: %v", *stressReplay, err)
		}
		fmt.Printf("repro      %s\n", *stressReplay)
		fmt.Printf("scenario   seed %#x: %d OSDs/%d groups, %d faults, policy %s\n",
			r.Scenario.Seed, r.Scenario.OSDs, r.Scenario.Groups,
			len(r.Scenario.Plan.Faults), policyName(r.Scenario.Policy))
		fmt.Printf("verdict    digest %s, %d violation(s)\n", v.Digest, len(v.Violations))
		for _, viol := range v.Violations {
			fmt.Printf("           %s\n", viol)
		}
		if !match {
			fatalf("replay verdict drifted from the recorded one (got digest %s, want %s)",
				v.Digest, r.Verdict.Digest)
		}
		fmt.Println("replay     verdict reproduced byte for byte")
		return
	}

	// Every simulation in every experiment runs under this context:
	// cancelled by Ctrl-C, and by -timeout if set.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := experiment.Options{
		Context:     ctx,
		Scale:       *scale,
		Seed:        *seed,
		Parallelism: *parallel,
		Lambda:      *lambda,
		Check:       *selfchk,
		Telemetry: telemetry.SinkConfig{
			Dir:    *telemetryDir,
			Events: *telemetryEvents,
			Sample: sim.Time(*telemetrySample * float64(sim.Second)),
		},
	}
	if opts.Telemetry.Enabled() {
		// Reject a bad class filter before spending minutes simulating.
		if _, err := telemetry.ParseClasses(*telemetryEvents); err != nil {
			fatalf("%v", err)
		}
	}
	counts, err := parseOSDCounts(*osds)
	if err != nil {
		fatalf("%v", err)
	}
	opts.OSDCounts = counts

	want, err := parseExperiments(*exp)
	if err != nil {
		fatalf("%v", err)
	}

	start := time.Now()
	run := func(name string, fn func() (string, error)) {
		if !want[name] {
			return
		}
		delete(want, name)
		t0 := time.Now()
		out, err := fn()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fatalf("%s: interrupted: %v", name, err)
			}
			fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s took %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("check", func() (string, error) {
		results := check.Golden(check.GoldenOptions{
			Scale:  *scale,
			OSDs:   counts[0],
			Seed:   *seed,
			Lambda: *lambda,
		})
		out := check.FormatResults(results)
		if f := check.FirstFailure(results); f != nil {
			return "", fmt.Errorf("golden shape %s failed: %v\n%s", f.Name, f.Err, out)
		}
		return out, nil
	})
	run("table1", func() (string, error) {
		r, err := experiment.Table1(opts)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("fig1", func() (string, error) {
		r, err := experiment.Fig1(opts)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("fig3", func() (string, error) {
		r, err := experiment.Fig3(opts)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})

	// The matrix experiments share one set of runs.
	if want["fig5"] || want["fig6"] || want["fig8"] {
		t0 := time.Now()
		cells := experiment.Matrix(opts)
		for _, c := range cells {
			if c.Err != nil {
				fatalf("matrix %s/%d/%s: %v", c.Trace, c.OSDs, c.Policy, c.Err)
			}
		}
		fmt.Printf("[matrix: %d runs in %s]\n\n", len(cells), time.Since(t0).Round(time.Millisecond))
		if want["fig5"] {
			delete(want, "fig5")
			fmt.Println(experiment.Fig5(opts, cells).Format())
		}
		if want["fig6"] {
			delete(want, "fig6")
			fmt.Println(experiment.Fig6(opts, cells).Format())
		}
		if want["fig8"] {
			delete(want, "fig8")
			fmt.Println(experiment.Fig8(opts, cells).Format())
		}
	}

	run("fig7", func() (string, error) {
		r, err := experiment.Fig7(opts)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("reliability", func() (string, error) {
		r, err := experiment.Reliability(opts)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("ablation", func() (string, error) {
		var b strings.Builder
		for _, r := range experiment.Ablations(opts) {
			b.WriteString(r.Format())
			b.WriteByte('\n')
		}
		b.WriteString(experiment.AblationFTL(opts).Format())
		b.WriteByte('\n')
		ol, err := experiment.AblationOpenLoop(opts)
		if err != nil {
			return "", err
		}
		b.WriteString(ol.Format())
		b.WriteByte('\n')
		return b.String(), nil
	})

	run("stress", func() (string, error) {
		sum := chaos.Stress(chaos.Options{
			Scenarios:   *stressN,
			Seed:        *seed,
			Budget:      *stressBudget,
			ArtifactDir: *stressArtifacts,
			Log:         os.Stderr,
		})
		var b strings.Builder
		fmt.Fprintf(&b, "stress: %d scenarios in %s (stopped: %s), %d failure(s)\n",
			sum.Ran, sum.Elapsed.Round(time.Millisecond), sum.Stopped, len(sum.Failures))
		for _, f := range sum.Failures {
			fmt.Fprintf(&b, "  scenario %d (seed %#x): %v\n", f.Index, f.Seed, f.Verdict.Violations)
			fmt.Fprintf(&b, "    shrunk to %d fault(s), %d records (%d shrink runs)",
				len(f.Shrunk.Plan.Faults), f.Shrunk.Records, f.ShrinkRuns)
			if f.ArtifactPath != "" {
				fmt.Fprintf(&b, " -> %s", f.ArtifactPath)
			}
			b.WriteByte('\n')
		}
		if !sum.OK() {
			return "", fmt.Errorf("%d of %d scenarios violated invariants\n%s",
				len(sum.Failures), sum.Ran, b.String())
		}
		return strings.TrimRight(b.String(), "\n"), nil
	})

	for name := range want {
		fatalf("unknown experiment %q", name)
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
}

// policyName spells out a scenario's empty-string policy default.
func policyName(p string) string {
	if p == "" {
		return "baseline"
	}
	return p
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edmbench: "+format+"\n", args...)
	os.Exit(1)
}
