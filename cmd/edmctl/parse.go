package main

import (
	"fmt"
	"strconv"
	"strings"
)

// sweepFigures lists the matrix projections edmctl can render: the
// figures whose cells are independent (trace, size, policy) runs and
// therefore shard over a fleet.
var sweepFigures = []string{"fig5", "fig6", "fig8"}

// parseFigures expands the comma-separated -exp flag, rejecting
// non-matrix experiments upfront with an error naming every valid
// option.
func parseFigures(s string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(strings.ToLower(e))
		if e == "" {
			continue
		}
		if e == "all" {
			for _, k := range sweepFigures {
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			}
			continue
		}
		known := false
		for _, k := range sweepFigures {
			if e == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown sweep experiment %q (valid: %s, all)",
				e, strings.Join(sweepFigures, ", "))
		}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiments selected (valid: %s, all)",
			strings.Join(sweepFigures, ", "))
	}
	return out, nil
}

// parseOSDCounts parses the comma-separated -osds list of cluster sizes.
func parseOSDCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -osds value %q (want a comma-separated list of positive cluster sizes, e.g. 16,20)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseWorkers splits the comma-separated -workers list of edmd base
// URLs; empty means run locally.
func parseWorkers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		out = append(out, strings.TrimRight(part, "/"))
	}
	return out
}

// parseTraces splits the comma-separated -traces list; empty keeps the
// default (all seven profiles).
func parseTraces(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
