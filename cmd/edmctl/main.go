// Command edmctl drives a fleet of edmd workers through one sweep.
//
// edmctl decomposes an experiment matrix into cell specs, fans them
// out over the workers with retry, reassignment and hedging
// (internal/dispatch), and merges the results into figure tables that
// are byte-identical to a local single-process run of the same matrix
// and seed. With no -workers it runs the cells locally, so the same
// invocation doubles as the reference output.
//
//	edmctl sweep -exp fig5 -workers localhost:8080,localhost:8081
//	edmctl sweep -exp fig5,fig6,fig8 -scale 20 -seed 42       # local
//	edmctl status -workers localhost:8080,localhost:8081
//
// Tables go to stdout; the dispatch summary (per-worker counters in
// /metricsz text format) goes to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"edm/internal/dispatch"
	"edm/internal/experiment"
	"edm/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "sweep":
		sweep(os.Args[2:])
	case "status":
		status(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "edmctl: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  edmctl sweep  [flags]   run an experiment matrix over the fleet (or locally)
  edmctl status [flags]   probe every worker's /healthz and /v1/version

run "edmctl <command> -h" for the command's flags
`)
}

func sweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		workersFlag = fs.String("workers", "", "comma-separated edmd base URLs (empty: run locally)")
		exp         = fs.String("exp", "fig5", "comma-separated matrix figures: fig5,fig6,fig8,all")
		scale       = fs.Int("scale", 20, "workload scale divisor (1 = full Table I size)")
		seed        = fs.Uint64("seed", 42, "experiment seed")
		osds        = fs.String("osds", "16,20", "comma-separated cluster sizes")
		traces      = fs.String("traces", "", "comma-separated workloads (default: all seven)")
		lambda      = fs.Float64("lambda", 0.1, "wear-imbalance trigger threshold λ")
		check       = fs.Bool("check", false, "run every cell with the cluster state self-check enabled")
		timeout     = fs.Duration("timeout", 0, "wall-clock cap on the whole sweep (0 = none); Ctrl-C also cancels")

		slots       = fs.Int("slots", 0, "in-flight cells per worker (0: size from the worker's /v1/version)")
		maxLaunches = fs.Int("max-launches", 3, "executions per cell before it is declared failed")
		hedgeAfter  = fs.Duration("hedge-after", 30*time.Second, "duplicate a cell still running after this (0 disables)")
		probe       = fs.Duration("probe-interval", 500*time.Millisecond, "unhealthy-worker reprobe cadence")
		poll        = fs.Duration("poll", 100*time.Millisecond, "job status poll cadence")
		noLocal     = fs.Bool("no-local-fallback", false, "fail cells instead of running them locally when the fleet is down")
		ckEvery     = fs.Uint64("checkpoint-every", 0, "checkpoint cadence in fired events; >0 stashes frames so a dead worker's cell resumes instead of restarting (0 disables)")
		priority    = fs.String("priority", "batch", "scheduling class for every cell: batch, normal or interactive (sweeps default to batch so interactive work can preempt them)")
		tenant      = fs.String("tenant", "", "fair-share tenant the sweep's cells are accounted to (empty: the worker default)")
		quiet       = fs.Bool("quiet", false, "suppress the dispatch summary and progress lines on stderr")
	)
	_ = fs.Parse(args)
	if fs.NArg() > 0 {
		fatalf("unexpected argument %q", fs.Arg(0))
	}

	figures, err := parseFigures(*exp)
	if err != nil {
		fatalf("%v", err)
	}
	counts, err := parseOSDCounts(*osds)
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := experiment.Options{
		Context:   ctx,
		Scale:     *scale,
		Seed:      *seed,
		OSDCounts: counts,
		Traces:    parseTraces(*traces),
		Lambda:    *lambda,
		Check:     *check,
	}
	specs := experiment.MatrixSpecs(opts)

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	pool := dispatch.New(dispatch.Config{
		Workers:         parseWorkers(*workersFlag),
		Client:          dispatch.ClientConfig{PollInterval: *poll, Priority: *priority, Tenant: *tenant},
		Slots:           *slots,
		MaxLaunches:     *maxLaunches,
		HedgeAfter:      *hedgeAfter,
		ProbeInterval:   *probe,
		DisableLocal:    *noLocal,
		CheckpointEvery: *ckEvery,
		Logf:            logf,
	})

	start := time.Now()
	runs, err := pool.Run(ctx, specs)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fatalf("sweep interrupted: %v", err)
		}
		fatalf("sweep: %v", err)
	}
	cells := dispatch.Merge(runs)
	for _, c := range cells {
		if c.Err != nil {
			fatalf("cell %s/%d/%s: %v", c.Trace, c.OSDs, c.Policy, c.Err)
		}
	}

	for _, fig := range figures {
		switch fig {
		case "fig5":
			fmt.Println(experiment.Fig5(opts, cells).Format())
		case "fig6":
			fmt.Println(experiment.Fig6(opts, cells).Format())
		case "fig8":
			fmt.Println(experiment.Fig8(opts, cells).Format())
		}
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "# %d cells in %s\n", len(runs), time.Since(start).Round(time.Millisecond))
		pool.WriteSummary(os.Stderr)
	}
}

func status(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	workersFlag := fs.String("workers", "", "comma-separated edmd base URLs")
	timeout := fs.Duration("timeout", 5*time.Second, "per-probe timeout")
	_ = fs.Parse(args)
	workers := parseWorkers(*workersFlag)
	if len(workers) == 0 {
		fatalf("status: no workers (pass -workers host:port,host:port)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	type report struct {
		url     string
		line    string
		healthy bool
	}
	reports := make([]report, len(workers))
	var wg sync.WaitGroup
	for i, url := range workers {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, *timeout)
			defer cancel()
			client := server.NewClient(url, nil)
			h, err := client.Health(cctx)
			if err != nil {
				reports[i] = report{url: url, line: fmt.Sprintf("%s  DOWN  %v", url, err)}
				return
			}
			v, verr := client.Version(cctx)
			ver := "?"
			if verr == nil {
				ver = fmt.Sprintf("%s %s (%s)", v.Service, v.Version, v.GoVersion)
			}
			reports[i] = report{
				url:     url,
				healthy: h.OK(),
				line: fmt.Sprintf("%s  %s  %s  workers=%d running=%d queue=%d/%d uptime=%.0fs",
					url, strings.ToUpper(h.Status), ver, h.Workers, h.Running, h.QueueDepth, h.QueueCapacity, h.UptimeSeconds),
			}
		}(i, url)
	}
	wg.Wait()

	down := 0
	for _, r := range reports {
		fmt.Println(r.line)
		if !r.healthy {
			down++
		}
	}
	if down > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "edmctl: "+format+"\n", args...)
	os.Exit(1)
}
