package main

import (
	"reflect"
	"testing"
)

func TestParseFigures(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{"fig5", []string{"fig5"}, false},
		{"fig5,fig8", []string{"fig5", "fig8"}, false},
		{"fig8, FIG5 ,fig8", []string{"fig8", "fig5"}, false},
		{"all", []string{"fig5", "fig6", "fig8"}, false},
		{"fig5,all", []string{"fig5", "fig6", "fig8"}, false},
		{"fig7", nil, true},
		{"", nil, true},
		{",", nil, true},
	} {
		got, err := parseFigures(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseFigures(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseFigures(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseOSDCounts(t *testing.T) {
	if got, err := parseOSDCounts("16, 20"); err != nil || !reflect.DeepEqual(got, []int{16, 20}) {
		t.Errorf("parseOSDCounts(\"16, 20\") = %v, %v", got, err)
	}
	for _, bad := range []string{"", "16,zero", "0", "-4"} {
		if _, err := parseOSDCounts(bad); err == nil {
			t.Errorf("parseOSDCounts(%q): want error", bad)
		}
	}
}

func TestParseWorkers(t *testing.T) {
	got := parseWorkers(" localhost:8080, http://h2:9/ ,, https://h3 ")
	want := []string{"http://localhost:8080", "http://h2:9", "https://h3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseWorkers = %v, want %v", got, want)
	}
	if got := parseWorkers(""); got != nil {
		t.Errorf("parseWorkers(\"\") = %v, want nil", got)
	}
}

func TestParseTraces(t *testing.T) {
	if got := parseTraces("home02, lair62b"); !reflect.DeepEqual(got, []string{"home02", "lair62b"}) {
		t.Errorf("parseTraces = %v", got)
	}
	if got := parseTraces(""); got != nil {
		t.Errorf("parseTraces(\"\") = %v, want nil (default set)", got)
	}
}
